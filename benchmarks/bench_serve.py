#!/usr/bin/env python
"""Schedule-cache serving benchmark — the numbers behind ``repro.serve``.

Four sections, each a dict in ``BENCH_serve.json`` at the repo root:

* ``cold_vs_hit``   — per-routine cold-solve latency vs byte-identical
  exact-hit latency over the same store (``hit_speedup`` is the
  headline: an exact hit must be at least an order of magnitude
  cheaper than the solve it replaced, and ``byte_identical`` asserts
  the hit really is the same schedule);
* ``family_warm``   — cold solve vs a family-warm-started solve of the
  same routine under a different solver budget (same family, new
  exact key).  ``family_vs_cold_ratio`` ≈ 1.0 means the near-miss
  seeding is free; far above 1 would mean the hint hurts;
* ``hit_rate_sweep``— a replayed request mix over *generator*
  workloads (a pool of seeded synthetic routines, every one requested
  ``rounds`` times) through one service: hit rate, coalescing and
  store growth of a steady-state serving loop;
* ``overload``      — a concurrent burst against a deliberately
  under-provisioned :class:`~repro.serve.fleet.FleetDaemon` (framed
  socket protocol, pre-warmed cache): p50/p99 latency of *accepted*
  requests, saturation throughput, and the shed rate.  The invariant
  gated here is ``no_request_raised``: under overload every request
  ends in a typed reply (ok or busy), never an exception or silence;
* ``journal_overhead`` — the same burst twice, without and with the
  telemetry journal enabled.  ``journal_overhead_ratio`` (plain
  throughput over journaled throughput, ~1.0 when journaling is free)
  is the gated headline — ``tia-bench-diff`` holds it near the
  baseline with a tight section threshold — and the journal itself is
  audited: every request exit produced exactly one checksummed record.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --out fresh.json
    PYTHONPATH=src python benchmarks/bench_serve.py --sections overload

CI gates with the noise-aware diff: ``tia-bench-diff BENCH_serve.json
fresh.json --gate``.  Run with ``PYTHONHASHSEED=0`` (CI does) — solver
wall time follows dict/set iteration order, and the committed baseline
was recorded under a pinned hash seed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import socket
import sys
import tempfile
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.ir.printer import format_function, format_schedule  # noqa: E402
from repro.sched.scheduler import ScheduleFeatures  # noqa: E402
from repro.serve.service import ScheduleService  # noqa: E402
from repro.workloads.generator import RoutineSpec, generate_routine  # noqa: E402
from repro.workloads.spec_routines import build_spec_routine  # noqa: E402

SMOKE_ROUTINES = ("xfree", "firstone", "get_heap_head")
FULL_ROUTINES = (
    "xfree", "firstone", "get_heap_head", "add_to_heap", "send_bits",
)
SMOKE_SEEDS = 4
FULL_SEEDS = 8


def _emitted(result):
    return format_function(result.fn) + "\n" + format_schedule(
        result.output_schedule, result.fn
    )


def _service(root, features):
    return ScheduleService(root, default_features=features)


def bench_cold_vs_hit(names, scale, time_limit, workdir):
    features = ScheduleFeatures(time_limit=time_limit)
    service = _service(workdir / "cold_vs_hit", features)
    fns = [build_spec_routine(name, scale=scale) for name in names]

    cold_seconds = 0.0
    cold_texts = []
    for fn in fns:
        t0 = time.perf_counter()
        outcome = service.request(fn)
        cold_seconds += time.perf_counter() - t0
        assert outcome.kind == "miss", outcome.kind
        cold_texts.append(_emitted(outcome.result))

    service.store.drop_mem()  # disk-hit numbers, not in-process-LRU ones
    hit_seconds = 0.0
    byte_identical = True
    for fn, cold_text in zip(fns, cold_texts):
        t0 = time.perf_counter()
        outcome = service.request(fn)
        hit_seconds += time.perf_counter() - t0
        byte_identical &= (
            outcome.kind == "exact" and _emitted(outcome.result) == cold_text
        )

    mem_seconds = 0.0  # second pass: served from the in-process front
    for fn in fns:
        t0 = time.perf_counter()
        service.request(fn)
        mem_seconds += time.perf_counter() - t0

    return {
        "routines": list(names),
        "scale": scale,
        "time_limit": time_limit,
        "cold_seconds": cold_seconds,
        "exact_hit_seconds": hit_seconds,
        "mem_hit_seconds": mem_seconds,
        "hit_speedup": cold_seconds / max(hit_seconds, 1e-9),
        "byte_identical": byte_identical,
    }


def bench_family_warm(names, scale, time_limit, workdir):
    cold_features = ScheduleFeatures(time_limit=time_limit)
    warm_features = ScheduleFeatures(time_limit=time_limit * 2)
    service = _service(workdir / "family_warm", cold_features)
    fns = [build_spec_routine(name, scale=scale) for name in names]

    cold_seconds = 0.0
    for fn in fns:
        t0 = time.perf_counter()
        outcome = service.request(fn)
        cold_seconds += time.perf_counter() - t0
        assert outcome.kind == "miss"

    warm_seconds = 0.0
    warm_hits = 0
    for fn in fns:
        t0 = time.perf_counter()
        outcome = service.request(fn, warm_features)
        warm_seconds += time.perf_counter() - t0
        warm_hits += outcome.kind == "family"

    return {
        "routines": list(names),
        "scale": scale,
        "time_limit": time_limit,
        "cold_seconds": cold_seconds,
        "family_warm_seconds": warm_seconds,
        "family_hits": warm_hits,
        "family_vs_cold_ratio": warm_seconds / max(cold_seconds, 1e-9),
    }


def bench_hit_rate_sweep(seeds, time_limit, rounds, workdir):
    """Generator-workload traffic: each seeded routine requested
    ``rounds`` times through one service."""
    features = ScheduleFeatures(time_limit=time_limit)
    service = _service(workdir / "hit_rate", features)
    fns = [
        generate_routine(RoutineSpec(
            name=f"gen{seed}", seed=seed, instructions=16, blocks=4, loops=1,
        ))
        for seed in range(seeds)
    ]

    kinds = {"exact": 0, "family": 0, "miss": 0}
    coalesced = 0
    t0 = time.perf_counter()
    for _round in range(rounds):
        outcomes = service.request_many(fns)
        for outcome in outcomes:
            kinds[outcome.kind] += 1
            coalesced += outcome.coalesced
    elapsed = time.perf_counter() - t0
    requests = rounds * len(fns)

    stats = service.store.stats()
    return {
        "seeds": seeds,
        "rounds": rounds,
        "time_limit": time_limit,
        "requests": requests,
        "hits": kinds,
        "coalesced": coalesced,
        "hit_rate": (kinds["exact"] + kinds["family"]) / requests,
        "total_seconds": elapsed,
        "store_entries": stats["entries"],
        "store_bytes": stats["bytes"],
    }


def _percentile(ordered, frac):
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(len(ordered) * frac))]


def _prewarmed_overload_service(root, time_limit):
    """(service, request text) with the xfree schedule already cached.

    Pre-warming goes through the same parse path the daemon uses, so
    overload bursts are all exact hits — they measure the serving tier
    under saturation, not the solver.
    """
    from repro.ir.parser import parse_functions

    features = ScheduleFeatures(time_limit=time_limit)
    service = _service(root / "cache", features)
    text = format_function(build_spec_routine("xfree", scale=0.3))
    service.request(parse_functions(text)[0])
    return service, text


def _overload_burst(service, text, root, *, clients, requests_per_client,
                    journal=None, queue_capacity=2, shed_watermark=2):
    """One concurrent burst against a FleetDaemon.

    Clients send raw framed requests with no retry: a busy reply is
    recorded as a shed, an ok reply's latency feeds the percentile
    ladder, and any exception fails ``no_request_raised``.  The default
    capacity/watermark deliberately under-provision the daemon (the
    overload section); callers can provision generously instead to
    measure the accepted-path pipeline without shed jitter.
    """
    from repro.serve import protocol
    from repro.serve.fleet import FleetDaemon

    root.mkdir(parents=True, exist_ok=True)
    sock_path = str(root / "serve.sock")
    daemon = FleetDaemon(
        service, sock_path, workers=2, queue_capacity=queue_capacity,
        shed_watermark=shed_watermark, io_timeout=10.0, drain_budget=10.0,
        journal=journal,
    )
    box = {}

    def serve():
        box["counters"] = daemon.serve_forever()

    server = threading.Thread(target=serve, daemon=True)
    server.start()
    if not daemon.wait_ready(30):
        raise RuntimeError("overload daemon never bound its socket")

    latencies = []  # accepted (ok) request latencies, seconds
    tallies = {"ok": 0, "busy": 0, "error": 0, "raised": 0}
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def load(client_no):
        header, payload = protocol.solve_request(text)
        barrier.wait()
        for _ in range(requests_per_client):
            t0 = time.perf_counter()
            try:
                conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                conn.settimeout(30.0)
                try:
                    conn.connect(sock_path)
                    try:
                        protocol.send_frame(conn, header, payload)
                    except (BrokenPipeError, ConnectionResetError):
                        pass  # shed before the read: reply is buffered
                    reply = protocol.recv_frame(conn)
                finally:
                    conn.close()
                status = reply[0]["status"] if reply else "error"
            except Exception:
                status = "raised"
            elapsed = time.perf_counter() - t0
            with lock:
                tallies[status] = tallies.get(status, 0) + 1
                if status == "ok":
                    latencies.append(elapsed)

    threads = [
        threading.Thread(target=load, args=(i,)) for i in range(clients)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(300)
    elapsed = time.perf_counter() - t0
    daemon.initiate_drain("bench-complete")
    server.join(60)

    latencies.sort()
    total = clients * requests_per_client
    return {
        "requests": total,
        "accepted": tallies["ok"],
        "shed": tallies["busy"],
        "errors": tallies["error"] + tallies["raised"],
        "shed_rate": tallies["busy"] / total,
        "accepted_p50_seconds": _percentile(latencies, 0.50),
        "accepted_p99_seconds": _percentile(latencies, 0.99),
        "accepted_per_sec": tallies["ok"] / max(elapsed, 1e-9),
        "wall_seconds": elapsed,
        "no_request_raised": tallies["raised"] == 0 and tallies["error"] == 0,
        "daemon_counters": box.get("counters", {}),
    }


def bench_overload(workdir, *, clients, requests_per_client, time_limit):
    """Concurrent burst against an under-provisioned FleetDaemon."""
    root = workdir / "overload"
    service, text = _prewarmed_overload_service(root, time_limit)
    result = _overload_burst(
        service, text, root,
        clients=clients, requests_per_client=requests_per_client,
    )
    result["clients"] = clients
    result["requests_per_client"] = requests_per_client
    return result


def bench_journal_overhead(workdir, *, clients, requests_per_client,
                           time_limit):
    """The overload burst with and without the telemetry journal.

    Same pre-warmed cache, same load shape; the only variable is
    whether every request exit appends a checksummed journal record.
    ``journal_overhead_ratio`` is plain throughput over journaled
    throughput (1.0 = journaling is free), measured as best-of-N over
    interleaved burst pairs — single bursts are scheduler jitter,
    best-of-N against best-of-N cancels most of it.  Unlike the
    ``overload`` section the daemon here is *provisioned* (nothing
    sheds): shed patterns under saturation are far noisier than the
    per-request journal write being measured, and a shed burst would
    gate on that noise instead of on journaling cost.  The journaled
    runs are also audited against the exactly-one-record-per-exit
    invariant: request records must number completed + probes +
    rejected, and every record must checksum and schema-validate.
    """
    from repro.obs.journal import read_records, validate_record

    root = workdir / "journal_overhead"
    service, text = _prewarmed_overload_service(root, time_limit)
    repeats = 5
    capacity = max(64, clients * requests_per_client)
    plain_rps, journaled_rps = [], []
    records = []
    expected = 0
    raised = False
    for rep in range(repeats):
        plain = _overload_burst(
            service, text, root / f"plain{rep}",
            clients=clients, requests_per_client=requests_per_client,
            queue_capacity=capacity, shed_watermark=capacity,
        )
        journal_root = root / f"journal{rep}"
        journaled = _overload_burst(
            service, text, root / f"journaled{rep}",
            clients=clients, requests_per_client=requests_per_client,
            journal=str(journal_root),
            queue_capacity=capacity, shed_watermark=capacity,
        )
        plain_rps.append(plain["accepted_per_sec"])
        journaled_rps.append(journaled["accepted_per_sec"])
        records.extend(read_records(journal_root, kinds=("request",)))
        counters = journaled["daemon_counters"]
        expected += (
            counters.get("completed", 0)
            + counters.get("probes", 0)
            + counters.get("rejected", 0)
        )
        raised |= not (
            plain["no_request_raised"] and journaled["no_request_raised"]
        )

    best_plain = max(plain_rps)
    best_journaled = max(journaled_rps)
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "repeats": repeats,
        # Raw throughputs (requests/second) are context, not gates —
        # the ratio below is the gated signal, so these deliberately
        # avoid the *_per_sec suffix bench_diff would gate on.
        "plain_accepted_rps": best_plain,
        "journaled_accepted_rps": best_journaled,
        "journal_overhead_ratio": best_plain / max(best_journaled, 1e-9),
        "journal_records": len(records),
        "journal_records_match": len(records) == expected,
        "journal_records_valid": all(
            validate_record(r) == [] for r in records
        ),
        "no_request_raised": not raised,
    }


SECTIONS = (
    "cold_vs_hit", "family_warm", "hit_rate_sweep", "overload",
    "journal_overhead",
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--out", default=str(REPO / "BENCH_serve.json"),
        help="snapshot path (merged under the 'full'/'smoke' mode key)",
    )
    parser.add_argument(
        "--sections", default=",".join(SECTIONS), metavar="A,B",
        help="comma-separated subset to run (others keep their snapshot)",
    )
    args = parser.parse_args(argv)

    sections = [s for s in args.sections.split(",") if s]
    unknown = set(sections) - set(SECTIONS)
    if unknown:
        parser.error(f"unknown sections: {sorted(unknown)}")

    if args.smoke:
        names, scale, time_limit, rounds = SMOKE_ROUTINES, 0.3, 20.0, 3
        seeds = SMOKE_SEEDS
        clients, requests_per_client = 8, 4
    else:
        names, scale, time_limit, rounds = FULL_ROUTINES, 1.0, 60.0, 3
        seeds = FULL_SEEDS
        clients, requests_per_client = 12, 10
    mode = "smoke" if args.smoke else "full"

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_serve_"))
    try:
        report = {}
        if "cold_vs_hit" in sections:
            report["cold_vs_hit"] = bench_cold_vs_hit(
                names, scale, time_limit, workdir
            )
        if "family_warm" in sections:
            report["family_warm"] = bench_family_warm(
                names, scale, time_limit, workdir
            )
        if "hit_rate_sweep" in sections:
            report["hit_rate_sweep"] = bench_hit_rate_sweep(
                seeds, time_limit, rounds, workdir
            )
        if "overload" in sections:
            report["overload"] = bench_overload(
                workdir, clients=clients,
                requests_per_client=requests_per_client,
                time_limit=20.0,
            )
        if "journal_overhead" in sections:
            # Longer bursts than the overload section: the overhead
            # ratio needs enough requests per burst to rise above
            # scheduler jitter.
            report["journal_overhead"] = bench_journal_overhead(
                workdir, clients=clients,
                requests_per_client=requests_per_client * 8,
                time_limit=20.0,
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print(json.dumps(report, indent=2, sort_keys=True))
    out_path = pathlib.Path(args.out)
    merged = json.loads(out_path.read_text()) if out_path.exists() else {}
    existing = merged.get(mode, {})
    existing.update(report)
    merged[mode] = existing
    out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    problems = []
    cvh = report.get("cold_vs_hit")
    if cvh is not None:
        if not cvh["byte_identical"]:
            problems.append("exact hits were not byte-identical")
        if cvh["hit_speedup"] < 10.0:
            problems.append(
                f"exact-hit speedup {cvh['hit_speedup']:.1f}x < 10x"
            )
    overload = report.get("overload")
    if overload is not None:
        if not overload["no_request_raised"]:
            problems.append(
                f"overload run raised/errored {overload['errors']} request(s)"
            )
        if overload["accepted"] == 0:
            problems.append("overload run accepted nothing")
    journal = report.get("journal_overhead")
    if journal is not None:
        if not journal["no_request_raised"]:
            problems.append("journal_overhead run raised/errored requests")
        if not journal["journal_records_match"]:
            problems.append(
                f"journal recorded {journal['journal_records']} request "
                "exits, daemon counters disagree"
            )
        if not journal["journal_records_valid"]:
            problems.append("journal contains invalid records")
    if problems:
        print("FAIL: " + "; ".join(problems), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
