"""Software-pipelining bench: the future-work extension, quantified.

For loop kernels the three treatments form a strict quality ladder:

    plain global scheduling  >=  + cyclic motion (Sec. 5.2)  >=  modulo II

This bench regenerates that ladder for the Fig. 5 loop and two synthetic
loop kernels, asserting the ordering and that II matches the max of the
analytic bounds (ResMII, RecMII) — i.e. the ILP proves optimality.

Run:  pytest benchmarks/bench_swp.py --benchmark-only -q
"""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.sched.swp import ModuloScheduler
from repro.workloads.samples import fig5_cyclic_sample

WIDE_LOOP = """
.proc wide_loop
.livein r32, r33
.liveout r8
.block PRE freq=1
  add r15 = r32, 0
.block LOOP freq=1000 succ=LOOP:0.95,POST:0.05
  ld8 r20 = [r15] cls=heap
  ld8 r21 = [r15+8] cls=heap
  add r22 = r20, r21
  xor r23 = r22, r33
  and r24 = r23, r20
  or r25 = r24, r21
  adds r15 = 16, r15
  cmp.ne p6, p7 = r25, r0
  (p6) br.cond LOOP
.block POST freq=1
  add r8 = r22, 0
  br.ret b0
.endp
"""

RECURRENCE_LOOP = """
.proc rec_loop
.livein r32
.liveout r8
.block PRE freq=1
  add r15 = r32, 0
.block LOOP freq=1000 succ=LOOP:0.9,POST:0.1
  ld8 r20 = [r15] cls=heap
  add r15 = r20, r32
  xor r21 = r20, r32
  and r22 = r21, r20
  cmp.ne p6, p7 = r22, r0
  (p6) br.cond LOOP
.block POST freq=1
  add r8 = r15, 0
  br.ret b0
.endp
"""

CASES = {
    "fig5": fig5_cyclic_sample(),
    "wide": WIDE_LOOP,
    "recurrence": RECURRENCE_LOOP,
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_swp_ladder(benchmark, case):
    text = CASES[case]

    def ladder():
        plain = optimize_function(
            parse_function(text), ScheduleFeatures(time_limit=60, cyclic=False)
        )
        cyclic = optimize_function(
            parse_function(text), ScheduleFeatures(time_limit=60)
        )
        fn = parse_function(text)
        cfg = CfgInfo(fn)
        ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
        swp = ModuloScheduler().schedule_loop(fn, cfg, ddg, cfg.loops[0])
        return (
            plain.output_schedule.block_length("LOOP"),
            cyclic.output_schedule.block_length("LOOP"),
            swp,
        )

    plain_len, cyclic_len, swp = benchmark.pedantic(
        ladder, rounds=1, iterations=1
    )
    print(
        f"\n{case}: plain={plain_len} cyclic={cyclic_len} II={swp.ii} "
        f"(ResMII={swp.mii_resource}, RecMII={swp.mii_recurrence}, "
        f"stages={swp.stages})"
    )
    assert cyclic_len <= plain_len
    assert swp.ii <= cyclic_len
    assert swp.ii == max(swp.mii_resource, swp.mii_recurrence)
