"""Shared benchmark infrastructure.

Each benchmark regenerates one of the paper's evaluation artifacts
(Table 1, Table 2, Figure 7). The experiments are expensive (whole-ILP
solves), so they run once (``pedantic`` with a single round) and their
results are shared through a session cache; the rendered tables are
written to ``benchmarks/results/`` and echoed at the end of the session.

Environment knobs:

* ``REPRO_SCALE``       — routine size factor (default 1.0 = paper size)
* ``REPRO_TIME_LIMIT``  — per-solve ILP budget in seconds (default 90)
* ``REPRO_FIG7_SCALE``  — size factor for the Figure 7 sweep (default 0.5;
  the sweep runs the nine routines at four feature levels)
* ``REPRO_PARALLEL``    — worker count for the routine fan-out (default:
  one per CPU; ``1`` forces the sequential in-process path)
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment_cache():
    """name -> RoutineExperiment, shared across benchmark files."""
    return {}


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def fig7_scale():
    return float(os.environ.get("REPRO_FIG7_SCALE", "0.5"))
