"""Seeded chaos smoke run: the routine sweep under random-site faults.

Picks a deterministic (seeded) set of fault injections, installs them via
``REPRO_FAULTS``, runs the nine-routine sweep through
:func:`repro.tools.parallel.run_routines_parallel`, and asserts the
graceful-degradation contract: every :class:`RoutineOutcome` is ``ok``
and carries a valid schedule summary (Table 1/2 columns plus a truthful
``quality`` tier) — no fault may fail a routine, only degrade it.

Usage::

    python benchmarks/chaos_smoke.py [--seed N] [--rounds N]
        [--routines a,b,c] [--scale S] [--max-workers N] [--timeout S]
        [--cache-dir DIR] [--out BENCH_chaos.json]

With ``--cache-dir`` every solve goes through the schedule cache
(:mod:`repro.serve`) and the ``serve.store_io`` / ``serve.corrupt_entry``
fault sites join the pick pool: a faulted store must degrade requests to
cold solves, never fail them, so the same ok-contract applies.

Exit status 0 when every outcome in every round passes, 1 otherwise.
With ``--out`` the run also writes a JSON report: routines swept, the
fault mix that fired, and the fallback-tier histogram per round.
CI runs this as the fault-injection smoke job; locally it doubles as a
quick chaos sanity check after touching the degradation ladder.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.tools import faults  # noqa: E402
from repro.tools.parallel import run_routines_parallel  # noqa: E402
from repro.workloads.spec_routines import SPEC_ROUTINES  # noqa: E402

QUALITIES = ("optimal", "incumbent", "phase1", "fallback_input")

# Kinds that make sense per site. ``worker`` only gets ``crash``: a
# generic worker *error* is (by design) reported as a failed outcome,
# while a crash exercises the pool-rebuild + in-process-retry recovery
# that must converge to a valid batch.
SITE_KINDS = {
    "solve.phase1": ("timeout", "infeasible", "incumbent", "corrupt"),
    "solve.cut_resolve": ("timeout", "incumbent", "corrupt"),
    "solve.phase2": ("timeout", "infeasible", "incumbent", "corrupt"),
    "bundle": ("error",),
    "verify": ("error",),
    "worker": ("crash",),
}

# Extra sites armed only when the sweep runs through the schedule cache
# (``--cache-dir``): a faulted store must degrade every request to a
# cold solve, never fail it.
SERVE_SITE_KINDS = {
    "serve.store_io": ("error",),
    "serve.corrupt_entry": ("corrupt",),
}


def pick_faults(rng, count, site_kinds=None):
    """``count`` random (site, kind) injections, one per chosen site."""
    site_kinds = SITE_KINDS if site_kinds is None else site_kinds
    sites = rng.sample(sorted(site_kinds), k=min(count, len(site_kinds)))
    parts = []
    for site in sites:
        kind = rng.choice(site_kinds[site])
        times = rng.choice(("", ":1", ":2"))
        parts.append(f"{site}={kind}{times}")
    return ",".join(parts)


def run_round(spec, names, args):
    os.environ[faults.ENV_VAR] = spec
    faults.reset_env_cache()
    try:
        outcomes = run_routines_parallel(
            names,
            scale=args.scale,
            sim_invocations=args.sim_invocations,
            max_workers=args.max_workers,
            timeout=args.timeout,
            cache_dir=args.cache_dir,
        )
    finally:
        os.environ.pop(faults.ENV_VAR, None)
        faults.reset_env_cache()

    failures = []
    detail = []
    for outcome in outcomes:
        summary = outcome.summary()
        problems = []
        if not outcome.ok:
            problems.append(f"outcome not ok: {summary.get('error')}")
        else:
            if "table1" not in summary or "table2" not in summary:
                problems.append("summary missing table rows")
            elif summary["table2"]["constraints"] < 0:
                problems.append("nonsense table2 row")
            if summary.get("quality") not in QUALITIES:
                problems.append(f"invalid quality {summary.get('quality')!r}")
        status = "ok" if not problems else "FAIL"
        print(
            f"  {status:4s} {outcome.name:15s} "
            f"quality={summary.get('quality', '-'):15s} "
            f"retried={summary.get('retried', False)!s:5s} "
            f"{summary.get('fallback_reason', '')}"
        )
        detail.append(
            {
                "routine": outcome.name,
                "ok": outcome.ok and not problems,
                "quality": summary.get("quality"),
                "retried": bool(summary.get("retried", False)),
                "fallback_reason": summary.get("fallback_reason"),
            }
        )
        if problems:
            failures.append((outcome.name, problems, summary))
    return failures, detail


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--faults", type=int, default=3, help="injections per round"
    )
    parser.add_argument("--routines", type=str, default=None)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--sim-invocations", type=int, default=40)
    parser.add_argument("--max-workers", type=int, default=None)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument(
        "--out", type=str, default=None, help="write a JSON report here"
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="run the sweep through the schedule cache (repro.serve); "
        "arms the serve.* fault sites as well",
    )
    args = parser.parse_args(argv)

    names = (
        args.routines.split(",")
        if args.routines
        else [s.name for s in SPEC_ROUTINES]
    )
    rng = random.Random(args.seed)
    site_kinds = dict(SITE_KINDS)
    if args.cache_dir:
        site_kinds.update(SERVE_SITE_KINDS)
    all_failures = []
    rounds_detail = []
    fault_mix = {}
    fallback_tiers = dict.fromkeys(QUALITIES, 0)
    retried_total = 0
    for round_no in range(args.rounds):
        spec = pick_faults(rng, args.faults, site_kinds)
        print(f"round {round_no}: REPRO_FAULTS={spec}")
        failures, detail = run_round(spec, names, args)
        all_failures.extend(failures)
        for part in spec.split(","):
            site_kind = part.split(":", 1)[0]
            fault_mix[site_kind] = fault_mix.get(site_kind, 0) + 1
        for row in detail:
            if row["quality"] in fallback_tiers:
                fallback_tiers[row["quality"]] += 1
            retried_total += row["retried"]
        rounds_detail.append(
            {"round": round_no, "faults": spec, "outcomes": detail}
        )

    if args.out:
        report = {
            "seed": args.seed,
            "rounds": args.rounds,
            "routines": names,
            "scale": args.scale,
            "sim_invocations": args.sim_invocations,
            "fault_mix": fault_mix,
            "fallback_tiers": fallback_tiers,
            "retried": retried_total,
            "failures": [
                {"routine": name, "problems": problems}
                for name, problems, _ in all_failures
            ],
            "rounds_detail": rounds_detail,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")

    if all_failures:
        print(f"\n{len(all_failures)} outcome(s) violated the contract:")
        for name, problems, summary in all_failures:
            print(f"  {name}: {problems}")
            print(f"    {json.dumps(summary, default=str)}")
        return 1
    print(f"\nchaos smoke passed: {args.rounds} round(s), no contract violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
