"""Regenerate Figure 7: the incremental-extension staircase.

The paper enables its extensions cumulatively — base global scheduling,
+speculation (5.1), +cyclic motion (5.2), +partial-ready motion (5.3) —
and reports the average schedule-length reduction plus the accompanying
average solve time at each level. Each benchmark here is one level of
the staircase over all nine routines; the rendered series is written to
``benchmarks/results/fig7.txt``.

The sweep runs at ``REPRO_FIG7_SCALE`` (default 0.5) because it is a
4x-everything parameter sweep; the shape — every extension contributing
on a subset of routines, solve time rising for the last levels — is what
the figure shows and what the assertions check.

Run:  pytest benchmarks/bench_fig7.py --benchmark-only -q
"""

import os

import pytest

from repro.tools.experiments import FIG7_LEVELS, default_features
from repro.tools.parallel import run_routines_parallel
from support import parallel_workers


def fig7_scale():
    return float(os.environ.get("REPRO_FIG7_SCALE", "0.5"))
from repro.tools.report import render_fig7
from repro.workloads.spec_routines import SPEC_ROUTINES

ROUTINES = [spec.name for spec in SPEC_ROUTINES]
_LEVEL_RESULTS = {}


@pytest.mark.parametrize("label,overrides", FIG7_LEVELS, ids=[l for l, _ in FIG7_LEVELS])
def test_fig7_level(benchmark, label, overrides):
    """One bar of Figure 7: all routines at one extension level."""

    def sweep():
        features = default_features(**overrides)
        outcomes = run_routines_parallel(
            ROUTINES,
            features=features,
            scale=fig7_scale(),
            max_workers=parallel_workers(),
        )
        rows = {}
        for outcome in outcomes:
            assert outcome.ok, f"{outcome.name}: {outcome.error}"
            experiment = outcome.experiment
            rows[outcome.name] = {
                "reduction": experiment.comparison.static_reduction,
                "time": experiment.result.ilp_size["time"],
                "ok": experiment.result.verification.ok,
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(r["ok"] for r in rows.values())
    _LEVEL_RESULTS[label] = {
        "avg_reduction": sum(r["reduction"] for r in rows.values()) / len(rows),
        "avg_time": sum(r["time"] for r in rows.values()) / len(rows),
        "per_routine": rows,
    }


def test_render_fig7(benchmark, results_dir):
    if len(_LEVEL_RESULTS) < len(FIG7_LEVELS):
        pytest.skip("level sweeps not run (use --benchmark-only)")
    ordered = {label: _LEVEL_RESULTS[label] for label, _ in FIG7_LEVELS}
    text = benchmark.pedantic(lambda: render_fig7(ordered), rounds=1, iterations=1)
    (results_dir / "fig7.txt").write_text(text + "\n")
    print()
    print(text)

    reductions = [ordered[label]["avg_reduction"] for label, _ in FIG7_LEVELS]
    # The staircase is monotone (paper: "on the average, each is
    # essential"); allow half-a-point of noise between adjacent levels.
    for earlier, later in zip(reductions, reductions[1:]):
        assert later >= earlier - 0.005
    # The full feature set beats the base noticeably.
    assert reductions[-1] > reductions[0]
