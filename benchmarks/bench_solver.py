#!/usr/bin/env python
"""Solver performance harness — before/after numbers for the ILP stack.

Sections, each a dict in ``BENCH_solver.json`` at the repo root:

* ``root_lp``       — presolve + root-relaxation cost on a scheduling
  model, seed (git-history replica) vs current vectorized presolve;
* ``bb_throughput`` — branch-and-bound nodes/second on a fixed MILP
  batch, seed solver replica vs the rewritten lazy/warm-started solver;
* ``cut_resolve``   — bundling-cut loop cost on the Sec. 4.2 trigger
  routine, rebuild-per-cut (seed behaviour) vs incremental append;
* ``sweep``         — end-to-end nine-routine Table 2 sweep, seed code
  path (sequential, rebuild everything) vs current (incremental model
  reuse + process-pool fan-out). Fan-out width = CPU count, so the
  measured ratio is hardware-dependent; ``workers`` records it.
* ``obs_overhead``  — scheduler-path cost of the observability layer,
  recording off vs on;
* ``decompose``     — region decomposition (repro.sched.decompose) vs
  the whole-function ILP on multi-region generator routines: wall time
  must drop and bundle counts must not grow.
* ``portfolio``     — backend racing (repro.ilp.portfolio) vs each
  single backend on the same routines: aggregate wall clock must stay
  within ~1.1x of the best single backend, quality must never decay,
  and the raced schedule must match the winner's solo run byte for
  byte.
* ``swp``           — modulo scheduling (repro.sched.modulo) over the
  loop-dominated family: the II ladder must hit II = max(ResMII,
  RecMII) on >=80% of pipelined loops, every pipelined loop must pass
  the kernel-vs-unrolled oracle, and a ``swp.materialize`` chaos round
  must degrade down the ladder instead of raising.

The seed baselines are materialized from the growth-seed commit via
``git show`` so the comparison runs the *actual* old code, not a guess.

Usage::

    PYTHONPATH=src python benchmarks/bench_solver.py            # full run
    PYTHONPATH=src python benchmarks/bench_solver.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_solver.py --smoke --check

``--smoke`` shrinks scales/limits for CI; ``--check`` additionally
compares the measured smoke sweep against the committed JSON and exits
nonzero on a >2x wall-time regression (and never rewrites the file).
CI now prefers the noise-aware whole-snapshot gate instead: write a
fresh snapshot with ``--smoke --out fresh.json`` and run
``tia-bench-diff BENCH_solver.json fresh.json --gate``; ``--check``
remains for quick local use.

Run with ``PYTHONHASHSEED=0`` (CI does): model row order follows dict/set
iteration order, and HiGHS's branch-and-cut path — hence wall time, by
up to ~2x on the root-bound routines — follows row order. A pinned hash
seed makes the committed baseline comparable across runs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import subprocess
import sys
import time
import types

REPO = pathlib.Path(__file__).resolve().parent.parent
SEED_COMMIT = "5d1fe37"

if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.ilp import Model, solve_model  # noqa: E402
from repro.ilp.branch_bound import BranchBoundSolver  # noqa: E402
from repro.ilp.presolve import presolve_arrays  # noqa: E402
from repro.ir.parser import parse_function  # noqa: E402
from repro.sched.scheduler import ScheduleFeatures, optimize_function  # noqa: E402
from repro.tools.experiments import default_features  # noqa: E402
from repro.tools.parallel import run_routines_parallel  # noqa: E402
from repro.workloads.spec_routines import SPEC_ROUTINES  # noqa: E402

ROUTINES = [spec.name for spec in SPEC_ROUTINES]

# Sec. 4.2 trigger: two F-unit ops plus a movl cannot be encoded in one
# cycle's templates, so the driver must add a bundling cut and re-solve.
CUT_TRIGGER = """
.proc fbound
.livein r32, f5, f6, f8, f9
.liveout r8, f4, f7
.block A freq=100
  fma f4 = f5, f6
  fma f7 = f8, f9
  movl r10 = 99999
  add r8 = r10, r32
  br.ret b0
.endp
"""


# -- seed replica -----------------------------------------------------------
def load_seed_solver():
    """Exec the seed commit's presolve/simplex/branch-and-bound modules.

    The blobs come straight from git history; only their intra-package
    imports are rewired so they bind to each *other* instead of the
    current (rewritten) modules. Returns the seed module dict or None
    when git history is unavailable (e.g. a shallow export).
    """

    def blob(path):
        return subprocess.check_output(
            ["git", "show", f"{SEED_COMMIT}:{path}"], cwd=REPO, text=True
        )

    try:
        sources = {
            name: blob(f"src/repro/ilp/{name}.py")
            for name in ("presolve", "simplex", "branch_bound")
        }
    except (subprocess.CalledProcessError, OSError):
        return None
    modules = {}
    for name in ("presolve", "simplex", "branch_bound"):
        text = sources[name]
        text = text.replace(
            "from repro.ilp.presolve import", "from _seed_presolve import"
        )
        text = text.replace(
            "from repro.ilp.simplex import", "from _seed_simplex import"
        )
        module = types.ModuleType(f"_seed_{name}")
        sys.modules[f"_seed_{name}"] = module
        exec(compile(text, f"<seed:{name}.py>", "exec"), module.__dict__)
        modules[name] = module
    return modules


# -- model builders ---------------------------------------------------------
def build_sched_arrays(name, scale, max_hops=4):
    """Matrix form of one routine's (featureless) scheduling model."""
    from repro.ir.cfg import CfgInfo
    from repro.ir.ddg import build_dependence_graph
    from repro.ir.liveness import compute_liveness
    from repro.ir.rename import rename_registers
    from repro.machine.itanium2 import ITANIUM2
    from repro.sched.cycles import lengths_from_input
    from repro.sched.ilp_formulation import SchedulingIlp
    from repro.sched.list_scheduler import ListScheduler
    from repro.sched.prep import clone_function, undo_speculation
    from repro.sched.regions import build_region
    from repro.workloads.spec_routines import build_spec_routine

    fn = build_spec_routine(name, scale=scale)
    work = clone_function(fn)
    undo_speculation(work)
    rename_registers(work)
    cfg = CfgInfo(work)
    ddg = build_dependence_graph(work, cfg, compute_liveness(work))
    schedule = ListScheduler().schedule(work, ddg)
    region = build_region(work, cfg, ddg, max_hops=max_hops)
    lengths = lengths_from_input(schedule, work)
    model = SchedulingIlp(region, dict(lengths), ITANIUM2).generate()
    return model.to_arrays()


def knapsack_batch(smoke):
    """Deterministic multi-knapsack MILPs that force real B&B searches."""
    rng = np.random.default_rng(7)
    models = []
    count, items = (4, 14) if smoke else (6, 22)
    for k in range(count):
        model = Model(f"knap{k}")
        xs = [model.add_var(f"x{i}", 0, 1, is_integer=True) for i in range(items)]
        values = rng.integers(3, 60, items)
        model.set_objective(sum(-int(v) * x for v, x in zip(values, xs)))
        for row in range(3):
            weights = rng.integers(1, 40, items)
            cap = int(weights.sum() // 3)
            model.add_constraint(
                sum(int(w) * x for w, x in zip(weights, xs)) <= cap
            )
        models.append(model)
    return models


# -- sections ---------------------------------------------------------------
def bench_root_lp(seed_modules, smoke):
    """Presolve + root LP cost on one scheduling model."""
    name = "get_heap_head" if smoke else "longest_match"
    scale = 0.4 if smoke else 1.0
    arrays = build_sched_arrays(name, scale)

    t0 = time.perf_counter()
    pre, infeasible = presolve_arrays(arrays)
    current_presolve = time.perf_counter() - t0
    assert not infeasible

    seed_presolve = None
    if seed_modules is not None:
        t0 = time.perf_counter()
        seed_pre, seed_infeasible = seed_modules["presolve"].presolve_arrays(arrays)
        seed_presolve = time.perf_counter() - t0
        assert not seed_infeasible
        fixed_match = int(np.sum(np.isclose(pre["lb"], pre["ub"]))) >= int(
            np.sum(np.isclose(seed_pre["lb"], seed_pre["ub"]))
        )
    else:
        fixed_match = None

    from scipy import optimize

    t0 = time.perf_counter()
    res = optimize.milp(
        arrays["c"],
        constraints=optimize.LinearConstraint(
            arrays["A"], arrays["b_lo"], arrays["b_hi"]
        ),
        bounds=optimize.Bounds(pre["lb"], pre["ub"]),
    )
    root_lp = time.perf_counter() - t0
    return {
        "model": name,
        "scale": scale,
        "rows": int(arrays["A"].shape[0]),
        "cols": int(arrays["A"].shape[1]),
        "presolve_seconds_seed": seed_presolve,
        "presolve_seconds_current": current_presolve,
        "presolve_speedup": (
            seed_presolve / current_presolve if seed_presolve else None
        ),
        "presolve_at_least_as_tight": fixed_match,
        "root_lp_seconds": root_lp,
        "root_lp_status": int(res.status),
    }


def bench_bb_throughput(seed_modules, smoke):
    """Nodes/second over the knapsack batch, seed vs current solver."""
    models = knapsack_batch(smoke)

    def run(solver_factory):
        nodes = 0
        elapsed = 0.0
        objectives = []
        for model in models:
            solver = solver_factory()
            t0 = time.perf_counter()
            solution = solver.solve(model)
            elapsed += time.perf_counter() - t0
            nodes += solution.stats.nodes
            objectives.append(round(solution.objective, 6))
        return nodes, elapsed, objectives

    cur_nodes, cur_time, cur_obj = run(lambda: BranchBoundSolver())
    out = {
        "models": len(models),
        "current_nodes": cur_nodes,
        "current_seconds": cur_time,
        "current_nodes_per_sec": cur_nodes / cur_time if cur_time else None,
    }
    if seed_modules is not None:
        seed_cls = seed_modules["branch_bound"].BranchBoundSolver
        seed_nodes, seed_time, seed_obj = run(lambda: seed_cls())
        out.update(
            seed_nodes=seed_nodes,
            seed_seconds=seed_time,
            seed_nodes_per_sec=seed_nodes / seed_time if seed_time else None,
            objectives_match=seed_obj == cur_obj,
            batch_time_speedup=seed_time / cur_time if cur_time else None,
        )
    # Warm-start share on the simplex engine (same batch, own LP engine).
    warm_solver = BranchBoundSolver(relaxation="simplex")
    warm = sum(warm_solver.solve(m).stats.warm_starts for m in models)
    out["simplex_warm_starts"] = int(warm)
    return out


def bench_cut_resolve(smoke):
    """Bundling-cut loop: rebuild-per-cut vs incremental append."""
    del smoke  # the trigger routine is tiny either way

    def run(incremental):
        fn = parse_function(CUT_TRIGGER)
        t0 = time.perf_counter()
        result = optimize_function(
            fn,
            ScheduleFeatures(time_limit=30, incremental_cuts=incremental),
        )
        elapsed = time.perf_counter() - t0
        cuts = sum("bundling constraint" in m for m in result.messages)
        placements = [
            (blk, cycle, instr.mnemonic)
            for blk in result.output_schedule.block_order
            for cycle, group in result.output_schedule.cycles_of(blk).items()
            for instr in group
        ]
        return elapsed, cuts, sorted(placements), result.solution.objective

    rebuild_s, rebuild_cuts, rebuild_sched, rebuild_obj = run(False)
    incr_s, incr_cuts, incr_sched, incr_obj = run(True)
    return {
        "routine": "fbound (Sec 4.2 trigger)",
        "cuts_fired": incr_cuts,
        "rebuild_seconds": rebuild_s,
        "incremental_seconds": incr_s,
        "speedup": rebuild_s / incr_s if incr_s else None,
        "schedules_identical": rebuild_sched == incr_sched,
        "objectives_identical": rebuild_obj == incr_obj,
    }


def bench_sweep(smoke):
    """End-to-end nine-routine Table 2 sweep, seed path vs current path."""
    scale = 0.25 if smoke else 0.5
    time_limit = 20 if smoke else 60
    workers = os.cpu_count() or 1

    # Seed configuration: rebuild-everything cut loop, no incumbent
    # carry-over, HiGHS' stock heuristic effort (the seed never set it).
    seed_features = default_features(
        time_limit=time_limit, incremental_cuts=False, heuristic_effort=None
    )
    t0 = time.perf_counter()
    seed_out = run_routines_parallel(
        ROUTINES, features=seed_features, scale=scale, max_workers=1
    )
    seed_total = time.perf_counter() - t0

    cur_features = default_features(time_limit=time_limit, incremental_cuts=True)
    t0 = time.perf_counter()
    cur_out = run_routines_parallel(
        ROUTINES, features=cur_features, scale=scale, max_workers=workers
    )
    cur_total = time.perf_counter() - t0

    per_routine = {}
    objectives_match = True
    all_optimal = True
    for seed_o, cur_o in zip(seed_out, cur_out):
        seed_obj = (
            seed_o.experiment.result.ilp_size["objective"] if seed_o.ok else None
        )
        cur_obj = (
            cur_o.experiment.result.ilp_size["objective"] if cur_o.ok else None
        )
        status = (
            cur_o.experiment.result.solution.status.name if cur_o.ok else "ERROR"
        )
        if not (seed_o.ok and cur_o.ok):
            all_optimal = False
        elif abs(seed_obj - cur_obj) > 1e-6:
            objectives_match = False
        per_routine[cur_o.name] = {
            "seed_seconds": seed_o.elapsed,
            "current_seconds": cur_o.elapsed,
            "status": status,
            "objective_seed": seed_obj,
            "objective_current": cur_obj,
        }
    # Wall time with one core per routine: the pool finishes when the
    # slowest routine does. Derived from the measured per-routine times
    # so the hardware-dependent part of the ratio is explicit.
    fanout_bound = max(o.elapsed for o in cur_out)
    return {
        "routines": len(ROUTINES),
        "scale": scale,
        "time_limit": time_limit,
        "workers": workers,
        "seed_path_seconds": seed_total,
        "current_path_seconds": cur_total,
        "speedup": seed_total / cur_total if cur_total else None,
        "fanout_bound_seconds": fanout_bound,
        "fanout_bound_speedup": seed_total / fanout_bound if fanout_bound else None,
        "objectives_match": objectives_match,
        "all_solved": all_optimal,
        "per_routine": per_routine,
    }


def bench_obs_overhead(smoke):
    """Scheduler-path cost of the observability layer, off vs on.

    Runs the same small in-process routine batch with recording disabled
    and enabled. The disabled ratio is the number the no-op fast path is
    graded on (the acceptance gate is "within 2% of pre-PR", i.e. a
    disabled_vs_enabled ratio near 1.0 plus unchanged section timings);
    the enabled ratio prices the full span + metrics pipeline.
    """
    from repro.obs import core as obs
    from repro.tools.experiments import run_routine

    names = ["firstone", "xfree"] if smoke else ["firstone", "xfree", "send_bits"]
    repeats = 2 if smoke else 3
    features = default_features(time_limit=30)

    def run_batch():
        t0 = time.perf_counter()
        for name in names:
            run_routine(
                name, features=features, scale=0.4, sim_invocations=20
            )
        return time.perf_counter() - t0

    obs.disable()
    run_batch()  # warm imports/caches out of the measurement
    disabled = min(run_batch() for _ in range(repeats))
    obs.enable()
    enabled = min(run_batch() for _ in range(repeats))
    recorder = obs.recorder()
    events = len(recorder.events)
    series = (
        len(recorder.metrics.counters)
        + len(recorder.metrics.gauges)
        + len(recorder.metrics.histograms)
    )
    # Gap timelines ride solve-span attributes; their sample volume is
    # the marginal recording cost this section prices, so record it.
    timelines = [
        ev["args"]["gap_timeline"]
        for ev in recorder.events
        if ev.get("args", {}).get("gap_timeline")
    ]
    gap_samples = sum(len(t.get("samples", ())) for t in timelines)
    obs.disable()
    return {
        "routines": names,
        "repeats": repeats,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "enabled_overhead_ratio": enabled / disabled if disabled else None,
        "events_recorded": events,
        "metric_series": series,
        "gap_timelines": len(timelines),
        "gap_samples": gap_samples,
    }


def bench_decompose(smoke):
    """Region decomposition vs the whole-function ILP.

    Runs the multi-region generator family (the decomposition workload:
    structured segments chained through frequency-neutral corridors) two
    ways — ``decompose=False`` (one whole-function model) and the
    default decomposed pipeline — under the same time limit.  At full
    scale the whole-function phase-1 model exceeds 10k rows and hits the
    time limit, while the per-partition models solve to optimality in
    seconds; the gated claims are ``*_seconds``/``speedup`` (decomposed
    must stay faster) and ``bundles_no_worse``/``verified`` (quality
    must not decay — the stitched schedule is a restriction of the
    whole-function model, not an approximation).
    """
    from repro.workloads.generator import generate_multi_region, multi_region_family

    count = 1 if smoke else 2
    scale = 0.4 if smoke else 1.0
    time_limit = 25 if smoke else 120
    base = dict(
        time_limit=time_limit, max_hops=4, decompose_min_instructions=60
    )

    per_routine = {}
    whole_total = 0.0
    decomposed_total = 0.0
    bundles_no_worse = True
    verified = True
    partitions_total = 0
    for spec, fn in multi_region_family(count=count, scale=scale, seed=5):
        t0 = time.perf_counter()
        whole = optimize_function(
            fn, ScheduleFeatures(**base, decompose=False)
        )
        whole_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        decomposed = optimize_function(
            generate_multi_region(spec), ScheduleFeatures(**base)
        )
        decomposed_seconds = time.perf_counter() - t0

        partitions = decomposed.trace.counters.get("decompose_partitions", 0)
        partitions_total += partitions
        whole_total += whole_seconds
        decomposed_total += decomposed_seconds
        whole_bundles = whole.bundles_out.total_bundles
        decomposed_bundles = decomposed.bundles_out.total_bundles
        if decomposed_bundles > whole_bundles:
            bundles_no_worse = False
        if not (whole.verification.ok and decomposed.verification.ok):
            verified = False
        per_routine[spec.name] = {
            "blocks": len(fn.blocks),
            "instructions": sum(len(b.instructions) for b in fn.blocks),
            "partitions": partitions,
            "whole_seconds": whole_seconds,
            "decomposed_seconds": decomposed_seconds,
            "speedup": whole_seconds / decomposed_seconds
            if decomposed_seconds
            else None,
            "phase1_rows_whole": whole.ilp_size.get("constraints"),
            "phase1_rows_decomposed": decomposed.ilp_size.get("constraints"),
            "bundles_whole": whole_bundles,
            "bundles_decomposed": decomposed_bundles,
            "quality_whole": whole.quality,
            "quality_decomposed": decomposed.quality,
        }

    return {
        "routines": len(per_routine),
        "scale": scale,
        "time_limit": time_limit,
        "partitions": partitions_total,
        "whole_seconds": whole_total,
        "decomposed_seconds": decomposed_total,
        "speedup": whole_total / decomposed_total if decomposed_total else None,
        "bundles_no_worse": bundles_no_worse,
        "verified": verified,
        "per_routine": per_routine,
    }


def bench_portfolio(smoke):
    """Portfolio racing vs each single backend on the same routines.

    Runs a routine batch three ways — ``backend="highs"``,
    ``backend="bb"``, and the racing ``backend="portfolio"`` — under one
    time limit.  The gated claims: the race costs at most ~1.1x the best
    single backend in aggregate (``portfolio_vs_best_ratio``, losers are
    cancelled at the first proof, so the overhead is poll granularity
    plus thread setup), ``quality_no_worse`` (the winner is one of the
    single backends, so the racing layer can only match or improve the
    tier), and ``schedules_match_winner`` (re-running the winning
    backend solo reproduces the raced schedule byte for byte, checked
    whenever one backend won every solve of a routine).
    """
    from repro.ir.printer import format_schedule
    from repro.sched.scheduler import QUALITY_TIERS
    from repro.workloads.spec_routines import build_spec_routine

    # The racing regime is substantial solves (seconds of search, where
    # a cancelled loser costs a poll tick); millisecond models would
    # measure thread setup + GIL contention instead of the contract.
    names = ["qSort3", "send_bits", "firstone"] if smoke else [
        "qSort3", "send_bits", "firstone", "get_heap_head", "add_to_heap",
    ]
    scale = 0.4 if smoke else 0.5
    time_limit = 20 if smoke else 40
    roster = ("highs", "bb", "ordered:highs")
    # Racing more lanes than cores just makes them steal each other's
    # cycles; cap the concurrency so single-core boxes serialize (the
    # race decides after the first proving lane and skips the rest).
    lane_threads = min(len(roster), os.cpu_count() or 1)
    base = dict(time_limit=time_limit)

    def render(result):
        # Recovery-stub labels embed process-global instruction uids,
        # which drift between sequential in-process runs (separate
        # tia-opt invocations number identically); normalize them so
        # the comparison sees scheduling differences only.
        text = format_schedule(result.output_schedule, result.fn)
        return re.sub(r"recover_\d+", "recover_#", text)

    def winners_of(result):
        return [
            s["portfolio"]["winner"]
            for s in result.trace.solves
            if s.get("portfolio")
        ]

    per_routine = {}
    totals = {"highs": 0.0, "bb": 0.0, "portfolio": 0.0}
    win_rate = {}
    seed_transfers = 0
    quality_no_worse = True
    schedules_match_winner = True
    matches_checked = 0
    for name in names:
        fn = build_spec_routine(name, scale=scale)
        runs = {}
        for backend in ("highs", "bb", "portfolio"):
            features = ScheduleFeatures(
                backend=backend,
                portfolio_backends=roster,
                portfolio_seed=0,
                portfolio_threads=lane_threads,
                **base,
            )
            t0 = time.perf_counter()
            result = optimize_function(build_spec_routine(name, scale=scale),
                                       features)
            elapsed = time.perf_counter() - t0
            runs[backend] = (result, elapsed)
            totals[backend] += elapsed

        raced, raced_seconds = runs["portfolio"]
        best_single = min(
            (runs[b][0].quality for b in ("highs", "bb")),
            key=QUALITY_TIERS.index,
        )
        if QUALITY_TIERS.index(raced.quality) > QUALITY_TIERS.index(
            best_single
        ):
            quality_no_worse = False
        winners = winners_of(raced)
        for winner in winners:
            # A race can end with no winner (budget exhausted before any
            # lane produced a point); keep it countable and sortable.
            win_rate[winner or "none"] = win_rate.get(winner or "none", 0) + 1
        for s in raced.trace.solves:
            detail = s.get("portfolio")
            if detail:
                seed_transfers += detail.get("seed_transfers", 0)
        matched = None
        if winners and len(set(winners)) == 1 and winners[0] in runs:
            matched = render(raced) == render(runs[winners[0]][0])
            matches_checked += 1
            if not matched:
                schedules_match_winner = False
        per_routine[name] = {
            "highs_seconds": runs["highs"][1],
            "bb_seconds": runs["bb"][1],
            "portfolio_seconds": raced_seconds,
            "quality": raced.quality,
            "winners": winners,
            "matched_winner_solo": matched,
        }

    best_total = min(totals["highs"], totals["bb"])
    races = sum(win_rate.values())
    return {
        "routines": len(names),
        "scale": scale,
        "time_limit": time_limit,
        "roster": list(roster),
        "lane_threads": lane_threads,
        "highs_seconds": totals["highs"],
        "bb_seconds": totals["bb"],
        "portfolio_seconds": totals["portfolio"],
        "portfolio_vs_best_ratio": (
            totals["portfolio"] / best_total if best_total else None
        ),
        "races": races,
        "win_rate": {
            runner: count / races for runner, count in sorted(win_rate.items())
        } if races else {},
        "seed_transfers": seed_transfers,
        "quality_no_worse": quality_no_worse,
        "schedules_match_winner": schedules_match_winner,
        "matches_checked": matches_checked,
        "per_routine": per_routine,
    }


def bench_swp(smoke):
    """Modulo scheduling on the loop-dominated family.

    Runs every family loop through the II ladder
    (:func:`repro.sched.modulo.ladder.pipeline_loop`) and records the
    Table-2-style row set behind EXPERIMENTS.md.  Gated claims:
    ``mii_achieved_80pct`` (II = max(ResMII, RecMII) on >= 80% of
    pipelined loops — the paper-style optimality headline),
    ``oracle_all_passed`` (every pipelined loop proven by execution),
    and ``chaos_degraded`` (a ``swp.materialize`` fault round demotes
    outcomes down the ladder; nothing raises).  ``mean_overlap_speedup``
    is critical path / II averaged over pipelined loops — the
    steady-state win of overlapping iterations against the serial
    dependence height.
    """
    from repro.ir.cfg import CfgInfo
    from repro.ir.ddg import build_dependence_graph
    from repro.ir.liveness import compute_liveness
    from repro.sched.modulo.bounds import critical_path
    from repro.sched.modulo.ladder import pipeline_loop
    from repro.sched.swp import ModuloScheduler, build_modulo_edges
    from repro.tools import faults
    from repro.workloads.generator import loop_dominated_family

    count = 4 if smoke else 8
    time_limit = 10.0 if smoke else 20.0

    def analyzed(fn):
        cfg = CfgInfo(fn)
        ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
        return cfg, ddg, cfg.loops[0]

    per_loop = {}
    pipelined = 0
    at_mii = 0
    oracle_all_passed = True
    solve_total = 0.0
    overlaps = []
    family = list(loop_dominated_family(count=count, seed=1))
    for spec, fn in family:
        cfg, ddg, loop = analyzed(fn)
        t0 = time.perf_counter()
        outcome = pipeline_loop(fn, cfg, ddg, loop, time_limit=time_limit)
        elapsed = time.perf_counter() - t0
        solve_total += elapsed
        row = {
            "body_instructions": outcome.detail.get("body_instructions"),
            "trips": spec.trips,
            "res_mii": outcome.mii_resource,
            "rec_mii": outcome.mii_recurrence,
            "ii": outcome.ii,
            "stages": outcome.stages,
            "status": outcome.status,
            "seconds": elapsed,
        }
        if outcome.pipelined:
            pipelined += 1
            if outcome.ii == outcome.mii:
                at_mii += 1
            if not (outcome.oracle and outcome.oracle.ok):
                oracle_all_passed = False
            body = ModuloScheduler._body_instructions(fn, loop)
            edges = build_modulo_edges(fn, loop, body, ddg)
            overlap = critical_path(body, edges) / outcome.ii
            overlaps.append(overlap)
            row["overlap_speedup"] = overlap
        per_loop[spec.name] = row

    # Chaos round: one materialization fault must demote the first loop
    # down the ladder (modulo kernel discarded -> time-indexed rung); a
    # persistent fault must land it unpipelined. Raising fails the run.
    _spec, fn = family[0]
    cfg, ddg, loop = analyzed(fn)
    with faults.inject("swp.materialize=error:1"):
        demoted = pipeline_loop(fn, cfg, ddg, loop, time_limit=time_limit)
    with faults.inject("swp.materialize=error"):
        floored = pipeline_loop(fn, cfg, ddg, loop, time_limit=time_limit)
    chaos_degraded = (
        demoted.status in ("fallback_swp", "unpipelined")
        and floored.status == "unpipelined"
    )

    return {
        "loops": len(per_loop),
        "time_limit": time_limit,
        "pipelined": pipelined,
        "mii_achieved": at_mii,
        "mii_achieved_rate": at_mii / pipelined if pipelined else 0.0,
        "mii_achieved_80pct": (
            pipelined > 0 and at_mii >= 0.8 * pipelined
        ),
        "oracle_all_passed": oracle_all_passed,
        "chaos_degraded": chaos_degraded,
        "mean_overlap_speedup": (
            sum(overlaps) / len(overlaps) if overlaps else None
        ),
        "ladder_seconds": solve_total,
        "per_loop": per_loop,
    }


# -- driver -----------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed JSON instead of rewriting it; "
        "exit 1 on a >2x sweep wall-time regression",
    )
    parser.add_argument(
        "--out", default=str(REPO / "BENCH_solver.json"), help="output path"
    )
    parser.add_argument(
        "--sections",
        default="root_lp,bb_throughput,cut_resolve,sweep,obs_overhead,decompose,portfolio,swp",
        help="comma list of sections to run",
    )
    args = parser.parse_args(argv)
    sections = set(args.sections.split(","))
    known = {
        "root_lp", "bb_throughput", "cut_resolve", "sweep", "obs_overhead",
        "decompose", "portfolio", "swp",
    }
    unknown = sections - known
    if unknown:
        parser.error(
            f"unknown sections: {', '.join(sorted(unknown))} "
            f"(choose from {', '.join(sorted(known))})"
        )
    mode = "smoke" if args.smoke else "full"

    seed_modules = load_seed_solver()
    if seed_modules is None:
        print("note: git history unavailable; seed baselines skipped")

    report = {}
    if "root_lp" in sections:
        report["root_lp"] = bench_root_lp(seed_modules, args.smoke)
        print(f"root_lp: {json.dumps(report['root_lp'], indent=2)}")
    if "bb_throughput" in sections:
        report["bb_throughput"] = bench_bb_throughput(seed_modules, args.smoke)
        print(f"bb_throughput: {json.dumps(report['bb_throughput'], indent=2)}")
    if "cut_resolve" in sections:
        report["cut_resolve"] = bench_cut_resolve(args.smoke)
        print(f"cut_resolve: {json.dumps(report['cut_resolve'], indent=2)}")
    if "sweep" in sections:
        report["sweep"] = bench_sweep(args.smoke)
        summary = {
            k: v for k, v in report["sweep"].items() if k != "per_routine"
        }
        print(f"sweep: {json.dumps(summary, indent=2)}")
    if "obs_overhead" in sections:
        report["obs_overhead"] = bench_obs_overhead(args.smoke)
        print(f"obs_overhead: {json.dumps(report['obs_overhead'], indent=2)}")
    if "decompose" in sections:
        report["decompose"] = bench_decompose(args.smoke)
        summary = {
            k: v for k, v in report["decompose"].items() if k != "per_routine"
        }
        print(f"decompose: {json.dumps(summary, indent=2)}")
    if "portfolio" in sections:
        report["portfolio"] = bench_portfolio(args.smoke)
        summary = {
            k: v for k, v in report["portfolio"].items() if k != "per_routine"
        }
        print(f"portfolio: {json.dumps(summary, indent=2)}")
    if "swp" in sections:
        report["swp"] = bench_swp(args.smoke)
        summary = {
            k: v for k, v in report["swp"].items() if k != "per_loop"
        }
        print(f"swp: {json.dumps(summary, indent=2)}")

    out_path = pathlib.Path(args.out)
    if args.check:
        if not out_path.exists():
            print(f"error: {out_path} missing; run without --check first")
            return 1
        committed = json.loads(out_path.read_text())
        reference = committed.get(mode, {}).get("sweep", {}).get(
            "current_path_seconds"
        )
        measured = report.get("sweep", {}).get("current_path_seconds")
        if reference is None or measured is None:
            print("check: no sweep reference/measurement; skipping gate")
            return 0
        print(
            f"check: measured {measured:.1f}s vs committed {reference:.1f}s "
            f"(gate {2 * reference:.1f}s)"
        )
        if measured > 2 * reference:
            print("check FAILED: sweep wall time regressed more than 2x")
            return 1
        print("check passed")
        return 0

    merged = json.loads(out_path.read_text()) if out_path.exists() else {}
    merged["seed_commit"] = SEED_COMMIT
    existing = merged.get(mode, {})
    existing.update(report)
    merged[mode] = existing
    out_path.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
