"""Regenerate Table 1: the paper's headline per-routine results.

For every routine: synthesize the calibrated workload, run the ILP
postpass (all extensions), bundle, verify, simulate input and output
schedules on the pipeline model, and derive static reduction,
instruction/bundle deltas, weighted IPC and routine/program speedups.
The rendered table (measured vs. published) lands in
``benchmarks/results/table1.txt``.

Run:  pytest benchmarks/bench_table1.py --benchmark-only -q
"""

import pytest

from support import fill_cache_parallel, parallel_workers
from repro.tools.experiments import run_routine
from repro.tools.report import render_table1
from repro.workloads.spec_routines import SPEC_ROUTINES

ROUTINES = [spec.name for spec in SPEC_ROUTINES]


@pytest.fixture(scope="session")
def prefetched_cache(experiment_cache):
    """Fan the nine routines out across the pool once, up front.

    On a single-CPU host this is a no-op (the per-routine benchmarks
    then time the real sequential runs); with more CPUs the wall-clock
    win comes from the batch, and the per-routine timings below report
    the worker-measured elapsed time through the cache.
    """
    if parallel_workers() > 1:
        fill_cache_parallel(experiment_cache, ROUTINES)
    return experiment_cache


@pytest.mark.parametrize("name", ROUTINES)
def test_table1_routine(benchmark, name, prefetched_cache):
    """One Table 1 row: the full postpass pipeline for one routine."""

    def run():
        return prefetched_cache.get(name) or run_routine(name)

    experiment = benchmark.pedantic(run, rounds=1, iterations=1)
    prefetched_cache[name] = experiment

    # Shape assertions: the headline claims of the paper hold.
    assert experiment.result.verification.ok, (
        "schedule failed verification: "
        + "; ".join(experiment.result.verification.problems[:4])
    )
    reduction = experiment.comparison.static_reduction
    assert 0.05 <= reduction <= 0.70, f"reduction {reduction:.1%} out of band"
    assert experiment.routine_speedup >= 1.0
    # IPC rises substantially (paper: 2.6 -> 4.5 weighted average).
    assert (
        experiment.comparison.metrics_out.weighted_ipc
        > experiment.comparison.metrics_in.weighted_ipc
    )


def test_render_table1(benchmark, experiment_cache, results_dir):
    """Write the measured-vs-published Table 1 artifact."""
    experiments = [experiment_cache[n] for n in ROUTINES if n in experiment_cache]
    if not experiments:
        pytest.skip("no routine runs cached (run with --benchmark-only)")
    text = benchmark.pedantic(lambda: render_table1(experiments), rounds=1, iterations=1)
    (results_dir / "table1.txt").write_text(text + "\n")
    print()
    print(text)
    # Aggregate shape: average reduction in the paper's 20-40% band
    # (we allow the wider 15-55% window for the synthetic workloads).
    avg = sum(e.comparison.static_reduction for e in experiments) / len(
        experiments
    )
    assert 0.15 <= avg <= 0.55
    # Instructions grow, bundles grow far less (the paper's key cache
    # argument: +15% instructions vs +2% bundles).
    avg_ins = sum(e.comparison.delta_instructions for e in experiments) / len(
        experiments
    )
    avg_bnd = sum(e.comparison.delta_bundles for e in experiments) / len(
        experiments
    )
    assert avg_ins >= 0.0
    assert avg_bnd < avg_ins
