"""Shared fixtures: small routines exercising the full IR pipeline."""

import pytest

from repro.ir.parser import parse_function

DIAMOND_TEXT = """
.proc diamond
.livein r32, r33, r40
.liveout r8
.block A freq=100
  add r14 = r32, r33
  cmp.eq p6, p7 = r14, r0
  (p6) br.cond C
.block B freq=60
  ld8 r15 = [r14] cls=heap
  add r16 = r15, r32
  add r8 = r16, r40
.block C freq=100
  st8 [r33+8] = r8 cls=stack
  br.ret b0
.endp
"""

LOOP_TEXT = """
.proc looper
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r15 = r32, 0
.block LOOP freq=1000 succ=LOOP:0.9,POST:0.1
  ld8 r21 = [r15] cls=heap
  add r22 = r21, r33
  adds r15 = 8, r15
  cmp.ne p6, p7 = r22, r0
  (p6) br.cond LOOP
.block POST freq=10
  add r8 = r22, 0
  br.ret b0
.endp
"""

STRAIGHT_TEXT = """
.proc straight
.livein r32, r33
.liveout r8
.block A freq=1
  ld8 r10 = [r32] cls=heap
  add r11 = r10, r33
  shl r12 = r11, 3
  st8 [r32+8] = r12 cls=heap
  add r8 = r12, r10
  br.ret b0
.endp
"""


@pytest.fixture
def diamond_fn():
    return parse_function(DIAMOND_TEXT)


@pytest.fixture
def loop_fn():
    return parse_function(LOOP_TEXT)


@pytest.fixture
def straight_fn():
    return parse_function(STRAIGHT_TEXT)
