"""Property-based cross-checks between the solver backends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import BranchBoundSolver, HighsSolver, Model, SimplexSolver
from scipy import optimize


@st.composite
def small_milp(draw):
    """A random small MILP with bounded binaries (always feasible at 0)."""
    n = draw(st.integers(2, 5))
    m = draw(st.integers(1, 4))
    coeffs = draw(
        st.lists(
            st.lists(st.integers(-4, 4), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    rhs = draw(st.lists(st.integers(0, 8), min_size=m, max_size=m))
    obj = draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n))
    return n, coeffs, rhs, obj


def _build(n, coeffs, rhs, obj):
    model = Model()
    xs = [model.add_binary(f"x{i}") for i in range(n)]
    for row, b in zip(coeffs, rhs):
        model.add_constraint(sum(c * x for c, x in zip(row, xs)) <= b)
    model.set_objective(sum(c * x for c, x in zip(obj, xs)))
    return model, xs


@given(small_milp())
@settings(max_examples=40, deadline=None)
def test_branch_bound_matches_highs(problem):
    model, _ = _build(*problem)
    ours = BranchBoundSolver().solve(model)
    model2, _ = _build(*problem)
    ref = HighsSolver().solve(model2)
    assert ours.status.has_solution and ref.status.has_solution
    assert ours.objective == pytest.approx(ref.objective, abs=1e-6)


@given(small_milp())
@settings(max_examples=40, deadline=None)
def test_incumbent_satisfies_all_constraints(problem):
    model, xs = _build(*problem)
    solution = BranchBoundSolver().solve(model)
    assignment = {x: solution.value_of(x) for x in xs}
    assert model.check_solution(assignment) == []
    assert all(solution.value_of(x) in (0, 1) for x in xs)


@given(
    st.integers(0, 2**31 - 1),
    st.integers(2, 6),
    st.integers(1, 5),
)
@settings(max_examples=30, deadline=None)
def test_simplex_matches_scipy_on_random_lps(seed, n, m):
    rng = np.random.default_rng(seed)
    a_mat = rng.integers(-3, 4, size=(m, n)).astype(float)
    b = rng.uniform(0.5, 6.0, size=m)
    c = rng.integers(-3, 4, size=n).astype(float)

    model = Model()
    xs = [model.add_var(f"x{i}", lb=0, ub=5) for i in range(n)]
    for i in range(m):
        model.add_constraint(sum(a_mat[i, j] * xs[j] for j in range(n)) <= b[i])
    model.set_objective(sum(c[j] * xs[j] for j in range(n)))

    ours = SimplexSolver().solve(model)
    ref = optimize.linprog(c, A_ub=a_mat, b_ub=b, bounds=[(0, 5)] * n, method="highs")
    assert ours.status == "optimal" and ref.success
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
