"""Model container: constraints, normalization, matrix form, LP export."""

import numpy as np
import pytest

from repro.errors import IlpError
from repro.ilp import Model, Sense


def test_duplicate_names_rejected():
    model = Model()
    model.add_var("x")
    with pytest.raises(IlpError):
        model.add_var("x")


def test_empty_domain_rejected():
    model = Model()
    with pytest.raises(IlpError):
        model.add_var("x", lb=2, ub=1)


def test_constraint_normalization_moves_constants():
    model = Model()
    x, y = model.add_var("x"), model.add_var("y")
    con = model.add_constraint(x + 3 <= y + 10)
    assert con.sense is Sense.LE
    assert con.rhs == 7.0
    assert con.expr.terms[x] == 1.0
    assert con.expr.terms[y] == -1.0
    assert con.expr.constant == 0.0


def test_equality_constraint():
    model = Model()
    x = model.add_var("x")
    con = model.add_constraint(x == 4)
    assert con.sense is Sense.EQ
    assert con.rhs == 4.0


def test_add_constraint_rejects_plain_bool():
    model = Model()
    with pytest.raises(IlpError):
        model.add_constraint(3 <= 4)


def test_satisfied_by():
    model = Model()
    x = model.add_var("x")
    con = model.add_constraint(2 * x >= 5)
    assert con.satisfied_by({x: 3})
    assert not con.satisfied_by({x: 2})


def test_check_solution_lists_violations():
    model = Model()
    x = model.add_var("x")
    c1 = model.add_constraint(x <= 1, name="cap")
    model.add_constraint(x >= 0)
    violated = model.check_solution({x: 2})
    assert violated == [c1]


def test_to_arrays_shapes_and_bounds():
    model = Model()
    x = model.add_binary("x")
    y = model.add_var("y", lb=None, ub=5.0)
    model.add_constraint(x + 2 * y <= 4)
    model.add_constraint(x - y == 1)
    model.set_objective(3 * x + y)
    arrays = model.to_arrays()
    assert arrays["c"].tolist() == [3.0, 1.0]
    assert arrays["A"].shape == (2, 2)
    assert arrays["b_hi"][0] == 4.0 and np.isneginf(arrays["b_lo"][0])
    assert arrays["b_lo"][1] == arrays["b_hi"][1] == 1.0
    assert arrays["integrality"].tolist() == [True, False]
    assert np.isneginf(arrays["lb"][1]) and arrays["ub"][1] == 5.0


def test_write_lp_contains_sections(tmp_path):
    model = Model("demo")
    x = model.add_binary("x")
    model.add_constraint(x <= 1, name="cap")
    model.set_objective(x)
    path = tmp_path / "demo.lp"
    text = model.write_lp(path)
    assert "Minimize" in text
    assert "cap:" in text
    assert "Generals" in text
    assert path.read_text() == text
