"""Pure-Python branch-and-bound solver."""

import pytest

from repro.ilp import BranchBoundSolver, Model, SolveStatus, solve_model


def _knapsack():
    model = Model("knap")
    a, b, c = (model.add_binary(n) for n in "abc")
    model.add_constraint(2 * a + 3 * b + 1 * c <= 5)
    model.add_constraint(3 * a + 4 * b + 2 * c <= 8)
    model.set_objective(-(5 * a + 4 * b + 3 * c))
    return model, (a, b, c)


def test_knapsack_optimum():
    model, (a, b, c) = _knapsack()
    solution = BranchBoundSolver().solve(model)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(-9.0)
    assert [solution.value_of(v) for v in (a, b, c)] == [1, 1, 0]


def test_simplex_relaxation_backend_agrees():
    model, _ = _knapsack()
    solution = BranchBoundSolver(relaxation="simplex").solve(model)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(-9.0)


def test_infeasible_integer_model():
    model = Model()
    z = model.add_binary("z")
    model.add_constraint(2 * z == 1)  # no binary satisfies this
    solution = BranchBoundSolver().solve(model)
    assert solution.status is SolveStatus.INFEASIBLE


def test_node_limit_degrades_gracefully():
    model = Model()
    xs = [model.add_binary(f"x{i}") for i in range(12)]
    model.add_constraint(sum(xs[:6]) - sum(xs[6:]) == 0)
    model.set_objective(sum((i % 3 - 1) * x for i, x in enumerate(xs)))
    solution = BranchBoundSolver(node_limit=1).solve(model)
    assert solution.status in (
        SolveStatus.OPTIMAL,  # may solve at the root
        SolveStatus.FEASIBLE,
        SolveStatus.NO_SOLUTION,
    )


def test_integer_variables_rounded_in_solution():
    model = Model()
    x = model.add_var("x", lb=0, ub=10, is_integer=True)
    y = model.add_var("y", lb=0, ub=10)
    model.add_constraint(2 * x + y >= 7.5)
    model.set_objective(x + y)
    solution = BranchBoundSolver().solve(model)
    value = solution.value_of(x)
    assert isinstance(value, int)
    assert solution.status is SolveStatus.OPTIMAL


def test_pure_lp_passthrough():
    model = Model()
    x = model.add_var("x", lb=0, ub=4)
    model.set_objective(-x)
    solution = BranchBoundSolver().solve(model)
    assert solution.objective == pytest.approx(-4.0)


def test_solve_model_rejects_unknown_backend():
    model, _ = _knapsack()
    with pytest.raises(ValueError):
        solve_model(model, backend="cplex")


def test_stats_populated():
    model, _ = _knapsack()
    solution = BranchBoundSolver().solve(model)
    assert solution.stats.lp_solves >= 1
    assert solution.stats.time_seconds >= 0.0
    assert solution.stats.backend.startswith("bb/")
