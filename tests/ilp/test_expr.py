"""Linear-expression algebra."""

import pytest

from repro.ilp import Model, lin_sum
from repro.ilp.expr import LinExpr


@pytest.fixture
def vars3():
    model = Model()
    return model, [model.add_var(f"v{i}") for i in range(3)]


def test_var_addition_builds_terms(vars3):
    _, (a, b, c) = vars3
    expr = a + 2 * b - c
    assert expr.terms[a] == 1.0
    assert expr.terms[b] == 2.0
    assert expr.terms[c] == -1.0
    assert expr.constant == 0.0


def test_constant_folding(vars3):
    _, (a, _b, _c) = vars3
    expr = a + 3 + 4 - 2
    assert expr.constant == 5.0


def test_zero_coefficients_are_dropped(vars3):
    _, (a, b, _c) = vars3
    expr = a + b - a
    assert a not in expr.terms
    assert expr.terms[b] == 1.0


def test_rsub_and_neg(vars3):
    _, (a, _b, _c) = vars3
    expr = 5 - a
    assert expr.constant == 5.0
    assert expr.terms[a] == -1.0
    neg = -expr
    assert neg.constant == -5.0
    assert neg.terms[a] == 1.0


def test_scaling(vars3):
    _, (a, b, _c) = vars3
    expr = (a + b + 1) * 3
    assert expr.terms[a] == 3.0
    assert expr.constant == 3.0
    assert (expr * 0).terms == {}


def test_scaling_by_expression_rejected(vars3):
    _, (a, b, _c) = vars3
    with pytest.raises(TypeError):
        a * b  # noqa: B018 - quadratic terms are not linear


def test_lin_sum_matches_repeated_add(vars3):
    _, (a, b, c) = vars3
    items = [a, 2 * b, c, 4, a]
    assert lin_sum(items).terms == (a + 2 * b + c + 4 + a).terms
    assert lin_sum(items).constant == 4.0


def test_lin_sum_empty():
    expr = lin_sum([])
    assert expr.terms == {}
    assert expr.constant == 0.0


def test_value_evaluation(vars3):
    _, (a, b, _c) = vars3
    expr = 2 * a - b + 7
    assert expr.value({a: 3, b: 4}) == 9.0


def test_expr_is_immutable_under_ops(vars3):
    _, (a, b, _c) = vars3
    base = a + b
    _ = base + a
    assert base.terms[a] == 1.0


def test_coerce_rejects_strings(vars3):
    _, (a, _b, _c) = vars3
    with pytest.raises(TypeError):
        LinExpr._coerce("nope")
    with pytest.raises(TypeError):
        a + "nope"
