"""The order/disjunctive re-encoding (:mod:`repro.ilp.ordered`).

The encoding is a *restriction* of the time-indexed model: every
instruction is pinned to its source block and sequenced with cycle
variables instead of per-cycle binaries.  Its contracts:

* it builds from any single-source scheduling formulation and solves
  with both numeric backends;
* its optimum is never *better* than the time-indexed optimum (a
  restriction can only lose options, never gain them);
* the completion solve maps an ordered solution back into the full
  model's variable space, where it validates against the full matrix.
"""

import pytest

from repro.ilp import SolveStatus, solve_model
from repro.ilp.highs import HighsSolver
from repro.ilp.ordered import OrderedEncoding
from repro.ilp.status import SolverStats
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.machine.itanium2 import ITANIUM2
from repro.sched.cycles import lengths_from_input
from repro.sched.ilp_formulation import SchedulingIlp
from repro.sched.list_scheduler import ListScheduler
from repro.sched.regions import build_region


def _formulation(fn):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    input_schedule = ListScheduler().schedule(fn, ddg)
    region = build_region(fn, cfg, ddg, allow_predication=False)
    lengths = lengths_from_input(input_schedule, fn)
    ilp = SchedulingIlp(region, lengths, ITANIUM2)
    return ilp, ilp.generate()


@pytest.fixture(params=["straight_fn", "diamond_fn"])
def built(request):
    fn = request.getfixturevalue(request.param)
    return _formulation(fn)


def test_encoding_builds_cycle_and_length_vars(built):
    ilp, _ = built
    encoding = OrderedEncoding.from_scheduling_ilp(ilp)
    assert encoding is not None
    # One cycle variable per included instruction, one length per block.
    assert encoding.cycle_vars
    assert set(encoding.len_vars) == set(ilp.lengths)
    assert encoding.model.variables


def test_encoding_build_is_deterministic(built):
    ilp, _ = built
    a = OrderedEncoding.from_scheduling_ilp(ilp)
    b = OrderedEncoding.from_scheduling_ilp(ilp)
    assert [v.name for v in a.model.variables] == [
        v.name for v in b.model.variables
    ]
    assert a.model.num_constraints == b.model.num_constraints


@pytest.mark.parametrize("backend", ["highs", "bb"])
def test_restriction_never_beats_time_indexed(built, backend):
    ilp, model = built
    reference = solve_model(model, backend="highs")
    assert reference.status is SolveStatus.OPTIMAL

    encoding = OrderedEncoding.from_scheduling_ilp(ilp)
    ordered = solve_model(encoding.model, backend=backend)
    assert ordered.status is SolveStatus.OPTIMAL
    converted = encoding.to_time_indexed(model, ordered)
    assert converted is not None
    objective, values = converted
    # A restriction can match the optimum but never improve on it.
    assert objective >= reference.objective - 1e-6
    # The completion fills *every* variable of the full model.
    assert set(values) == set(model.variables)


def test_completion_validates_against_full_matrix(built):
    """The converted point is feasible for the full model — the same
    check backends run on externally-supplied incumbents."""
    ilp, model = built
    encoding = OrderedEncoding.from_scheduling_ilp(ilp)
    ordered = solve_model(encoding.model, backend="highs")
    objective, values = encoding.to_time_indexed(model, ordered)
    accepted = HighsSolver._incumbent_solution(
        model, model.to_arrays(), values, SolverStats()
    )
    assert accepted is not None
    assert accepted.objective == pytest.approx(objective, abs=1e-6)


def test_ordered_matches_optimum_on_straightline(straight_fn):
    """With one block there is no branch-off structure to lose: the
    ordered optimum equals the time-indexed optimum exactly."""
    ilp, model = _formulation(straight_fn)
    reference = solve_model(model, backend="highs")
    encoding = OrderedEncoding.from_scheduling_ilp(ilp)
    ordered = solve_model(encoding.model, backend="highs")
    converted = encoding.to_time_indexed(model, ordered)
    assert converted is not None
    assert converted[0] == pytest.approx(reference.objective)
