"""Result types."""

import pytest

from repro.ilp import Model, SolveStatus
from repro.ilp.status import Solution, SolverStats


def test_has_solution_classification():
    assert SolveStatus.OPTIMAL.has_solution
    assert SolveStatus.FEASIBLE.has_solution
    assert not SolveStatus.INFEASIBLE.has_solution
    assert not SolveStatus.UNBOUNDED.has_solution
    assert not SolveStatus.NO_SOLUTION.has_solution


def test_solution_truthiness():
    assert Solution(SolveStatus.OPTIMAL, 1.0)
    assert not Solution(SolveStatus.INFEASIBLE)


def test_value_of_rounds_integers():
    model = Model()
    x = model.add_binary("x")
    y = model.add_var("y")
    solution = Solution(
        SolveStatus.OPTIMAL, 0.0, values={x: 0.9999999, y: 0.5}
    )
    assert solution.value_of(x) == 1
    assert isinstance(solution.value_of(x), int)
    assert solution.value_of(y) == 0.5


def test_stats_defaults():
    stats = SolverStats()
    assert stats.nodes == 0
    assert stats.gap is None
