"""Gap-timeline integrity: monotone, closed on every exit path, picklable."""

import pickle

import pytest

from repro.ilp import BranchBoundSolver, HighsSolver, Model, SolveStatus
from repro.obs.insight import GapTimeline, compute_gap, fault_timeline
from repro.tools import faults


def _knapsack():
    model = Model("knap")
    a, b, c = (model.add_binary(n) for n in "abc")
    model.add_constraint(2 * a + 3 * b + 1 * c <= 5)
    model.add_constraint(3 * a + 4 * b + 2 * c <= 8)
    model.set_objective(-(5 * a + 4 * b + 3 * c))
    return model


def _branchy():
    """A model that needs a real tree search.

    Max-weight stable set on three odd 5-cycles: the root LP relaxation
    is fractional (all 0.5), so branch-and-bound must actually branch.
    """
    model = Model("branchy")
    weights = [3, 4, 5, 4, 3]
    objective = 0
    for cycle in range(3):
        xs = [model.add_binary(f"c{cycle}_x{i}") for i in range(5)]
        for i in range(5):
            model.add_constraint(xs[i] + xs[(i + 1) % 5] <= 1)
        objective = objective - sum(
            (w + cycle) * x for w, x in zip(weights, xs)
        )
    model.set_objective(objective)
    return model


def _assert_monotone(timeline):
    gaps = [s["gap"] for s in timeline["samples"] if s["gap"] is not None]
    assert all(a >= b for a, b in zip(gaps, gaps[1:])), gaps


# -- unit behaviour -----------------------------------------------------------
def test_compute_gap_convention():
    assert compute_gap(10.0, 10.0) == 0.0
    assert compute_gap(10.0, 5.0) == pytest.approx(0.5)
    assert compute_gap(0.5, 0.0) == pytest.approx(0.5)  # max(1, |inc|) floor
    assert compute_gap(None, 5.0) is None
    assert compute_gap(10.0, float("inf")) is None
    assert compute_gap(float("nan"), 1.0) is None


def test_sample_clamps_monotone():
    timeline = GapTimeline()
    timeline.sample(0.0, incumbent=10.0, bound=5.0)   # gap 0.5
    timeline.sample(1.0, incumbent=10.0, bound=8.0)   # gap 0.2
    # An apparently wider gap (clock skew) records the tighter value.
    assert timeline.sample(2.0, incumbent=10.0, bound=4.0) == pytest.approx(0.2)
    _assert_monotone(timeline.as_dict())
    assert timeline.final_gap == pytest.approx(0.2)


def test_close_is_idempotent_and_latches():
    timeline = GapTimeline()
    timeline.sample(0.0, incumbent=3.0, bound=3.0)
    timeline.close(1.0, incumbent=3.0, bound=3.0, status="OPTIMAL")
    assert timeline.closed and timeline.status == "OPTIMAL"
    n = len(timeline)
    timeline.close(2.0, status="FEASIBLE")  # no-op
    timeline.sample(3.0, incumbent=1.0, bound=0.0)  # no-op after close
    assert len(timeline) == n
    assert timeline.status == "OPTIMAL"


def test_fault_timeline_is_closed_with_two_samples():
    timeline = fault_timeline("NO_SOLUTION")
    d = timeline.as_dict()
    assert d["closed"] and d["status"] == "NO_SOLUTION"
    assert len(d["samples"]) == 2


# -- solver exit paths --------------------------------------------------------
@pytest.mark.parametrize("solver_cls", [BranchBoundSolver, HighsSolver])
def test_optimal_exit_closes_timeline(solver_cls):
    solution = solver_cls().solve(_knapsack())
    assert solution.status is SolveStatus.OPTIMAL
    timeline = solution.stats.gap_timeline
    assert timeline is not None and timeline.closed
    assert len(timeline) >= 2
    assert timeline.status == "OPTIMAL"
    assert timeline.final_gap == pytest.approx(0.0)
    _assert_monotone(timeline.as_dict())


def test_bb_tree_search_samples_incumbents():
    solution = BranchBoundSolver().solve(_branchy())
    timeline = solution.stats.gap_timeline
    assert timeline.closed
    labels = [s.get("label") for s in timeline.samples]
    assert "root" in labels and "close" in labels
    _assert_monotone(timeline.as_dict())
    # The pseudocost snapshot rides the same stats object.
    assert isinstance(solution.stats.pseudocosts, list)


@pytest.mark.parametrize("solver_cls", [BranchBoundSolver, HighsSolver])
def test_infeasible_exit_closes_timeline(solver_cls):
    model = Model()
    z = model.add_binary("z")
    model.add_constraint(2 * z == 1)
    solution = solver_cls().solve(model)
    assert solution.status is SolveStatus.INFEASIBLE
    timeline = solution.stats.gap_timeline
    assert timeline is not None and timeline.closed
    assert timeline.status == "INFEASIBLE"


def test_bb_timeout_exit_closes_timeline():
    solution = BranchBoundSolver(time_limit=0.0).solve(_branchy())
    timeline = solution.stats.gap_timeline
    assert timeline is not None and timeline.closed
    assert timeline.status == solution.status.name


@pytest.mark.parametrize("solver_cls", [BranchBoundSolver, HighsSolver])
def test_injected_timeout_fault_closes_timeline(solver_cls):
    with faults.inject("solve.phase1=timeout:1"):
        solution = solver_cls().solve(
            _knapsack(), fault_site="solve.phase1"
        )
    assert solution.status is SolveStatus.NO_SOLUTION
    timeline = solution.stats.gap_timeline
    assert timeline is not None and timeline.closed
    assert len(timeline) >= 2


@pytest.mark.parametrize("solver_cls", [BranchBoundSolver, HighsSolver])
def test_injected_infeasible_fault_closes_timeline(solver_cls):
    with faults.inject("solve.phase1=infeasible:1"):
        solution = solver_cls().solve(
            _knapsack(), fault_site="solve.phase1"
        )
    assert solution.status is SolveStatus.INFEASIBLE
    assert solution.stats.gap_timeline.closed


def test_timeline_pickles_with_stats():
    solution = BranchBoundSolver().solve(_branchy())
    blob = pickle.dumps(solution.stats)
    stats = pickle.loads(blob)
    assert stats.gap_timeline.closed
    assert stats.gap_timeline.as_dict() == solution.stats.gap_timeline.as_dict()
