"""LP export of real scheduling models (regression guard on structure)."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.machine.itanium2 import ITANIUM2
from repro.sched.cycles import lengths_from_input
from repro.sched.ilp_formulation import SchedulingIlp
from repro.sched.list_scheduler import ListScheduler
from repro.sched.regions import build_region


@pytest.fixture(scope="module")
def model(request):
    from tests.conftest import DIAMOND_TEXT
    from repro.ir.parser import parse_function

    fn = parse_function(DIAMOND_TEXT)
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    schedule = ListScheduler().schedule(fn, ddg)
    region = build_region(fn, cfg, ddg, allow_predication=False)
    ilp = SchedulingIlp(
        region, lengths_from_input(schedule, fn), ITANIUM2
    )
    return ilp.generate()


def test_lp_text_has_all_constraint_families(model):
    text = model.write_lp()
    for family in ("flow_", "assign_", "gprec_", "lprec_", "width_",
                   "len_link_", "br_last_", "onelen_"):
        assert family in text, f"missing {family} rows in LP export"


def test_lp_row_count_matches_model(model):
    text = model.write_lp()
    body = text.split("Subject To\n")[1].split("Bounds\n")[0]
    rows = [line for line in body.splitlines() if line.strip()]
    assert len(rows) == model.num_constraints


def test_every_variable_bounded_binary(model):
    arrays = model.to_arrays()
    assert arrays["integrality"].all()
    assert (arrays["lb"] == 0).all()
    assert (arrays["ub"] == 1).all()


def test_paperlike_size_ratio(model):
    """Table 2 shows roughly 2x more constraints than variables."""
    ratio = model.num_constraints / model.num_variables
    assert 1.0 <= ratio <= 6.0
