"""The portfolio racer: bus semantics, determinism, fault degradation.

Three contracts under test:

* the :class:`IncumbentBus` is tighten-only in both directions — a worse
  incumbent or weaker bound never replaces a better one, and a poisoned
  runner's state is discarded wholesale;
* the race emits exactly what the winning backend would have produced
  solo, with a deterministic seeded tie-break for photo finishes;
* every ``portfolio.cancel`` fault kind degrades the race to the
  surviving lanes — the portfolio itself never raises.
"""

import numpy as np
import pytest

from repro.ilp import (
    BranchBoundSolver,
    IncumbentBus,
    Model,
    PortfolioSolver,
    RunnerControl,
    SolveStatus,
    solve_model,
)
from repro.ilp.portfolio import KNOWN_RUNNERS
from repro.tools import faults


def _knapsack():
    """A small integral MILP both backends solve to proven optimality."""
    model = Model()
    items = [(10, 5), (8, 4), (6, 3), (4, 2), (11, 6)]
    take = [
        model.add_var(f"take{i}", lb=0, ub=1, is_integer=True)
        for i in range(len(items))
    ]
    model.add_constraint(
        sum(w * v for (_, w), v in zip(items, take)) <= 10
    )
    # Minimization form: most value packed == most negative objective.
    model.set_objective(sum(-p * v for (p, _), v in zip(items, take)))
    return model


# -- IncumbentBus -------------------------------------------------------------
def test_bus_incumbent_tighten_only():
    bus = IncumbentBus()
    assert bus.publish_incumbent("a", [1.0, 0.0], 5.0)
    # Equal and worse offers are rejected and counted.
    assert not bus.publish_incumbent("b", [0.0, 1.0], 5.0)
    assert not bus.publish_incumbent("b", [0.0, 1.0], 7.0)
    assert bus.rejected == 2
    assert bus.publish_incumbent("b", [0.0, 1.0], 3.0)
    values, objective, version = bus.best_incumbent()
    assert objective == 3.0
    assert list(values) == [0.0, 1.0]
    assert bus.incumbent_holder() == "b"
    # The returned vector is a copy: mutating it cannot corrupt the bus.
    values[0] = 99.0
    assert list(bus.best_incumbent()[0]) == [0.0, 1.0]


def test_bus_incumbent_version_skips_seen():
    bus = IncumbentBus()
    bus.publish_incumbent("a", [1.0], 5.0)
    _, _, version = bus.best_incumbent()
    assert bus.best_incumbent(newer_than=version) is None
    bus.publish_incumbent("a", [0.0], 4.0)
    assert bus.best_incumbent(newer_than=version) is not None


def test_bus_bounds_tighten_only_per_runner():
    bus = IncumbentBus()
    assert bus.publish_bound("a", 1.0)
    assert not bus.publish_bound("a", 0.5)  # weaker: dropped
    assert bus.publish_bound("a", 2.0)
    assert bus.publish_bound("b", 1.5)
    assert bus.best_bound() == 2.0
    # Non-finite and absent bounds never land.
    assert not bus.publish_bound("c", float("nan"))
    assert not bus.publish_bound("c", float("-inf"))
    assert not bus.publish_bound("c", None)


def test_bus_poison_discards_state():
    bus = IncumbentBus()
    bus.publish_bound("a", 5.0)
    bus.publish_bound("b", 1.0)
    bus.publish_incumbent("a", [1.0], 2.0)
    bus.poison("a")
    # Its bound is gone, its incumbent is gone, future publishes bounce.
    assert bus.best_bound() == 1.0
    assert bus.best_incumbent() is None
    assert not bus.publish_bound("a", 9.0)
    assert not bus.publish_incumbent("a", [1.0], 0.0)
    assert bus.is_poisoned("a")
    # A healthy runner can still take over the incumbent slot.
    assert bus.publish_incumbent("b", [0.0], 3.0)


def test_control_poll_skips_own_publishes():
    bus = IncumbentBus()
    mine = RunnerControl("me", bus=bus)
    other = RunnerControl("other", bus=bus)
    mine.publish_incumbent([1.0], 5.0)
    assert mine.published == 1
    assert mine.poll_incumbent() is None  # own publish: not an exchange
    polled = other.poll_incumbent()
    assert polled is not None and polled[1] == 5.0
    other.publish_incumbent([0.0], 3.0)
    polled = mine.poll_incumbent()
    assert polled is not None and polled[1] == 3.0
    # Nothing new since: the poll stays quiet.
    assert mine.poll_incumbent() is None


def test_detached_control_never_touches_bus():
    control = RunnerControl("ordered#0", bus=None)
    control.publish_incumbent([1.0], 5.0)
    control.publish_bound(1.0)
    assert control.poll_incumbent() is None
    assert control.published == 0


# -- roster validation --------------------------------------------------------
def test_unknown_runner_rejected_eagerly():
    with pytest.raises(ValueError, match="ordered:highs"):
        PortfolioSolver(backends=("highs", "simplex"))
    with pytest.raises(ValueError, match="empty"):
        PortfolioSolver(backends=())


def test_solve_model_rejects_unknown_backend():
    with pytest.raises(ValueError, match="portfolio"):
        solve_model(_knapsack(), backend="gurobi")


# -- racing -------------------------------------------------------------------
def test_race_matches_single_backends():
    model = _knapsack()
    solo = {b: solve_model(_knapsack(), backend=b) for b in ("highs", "bb")}
    assert all(s.status is SolveStatus.OPTIMAL for s in solo.values())
    raced = PortfolioSolver(backends=("highs", "bb"), time_limit=30.0).solve(
        model
    )
    assert raced.status is SolveStatus.OPTIMAL
    assert raced.objective == pytest.approx(solo["highs"].objective)
    assert raced.stats.backend == "portfolio"
    detail = raced.stats.portfolio
    assert detail["winner"] in ("highs", "bb")
    assert detail["proof"] in ("solo", "combined")
    assert set(detail["lanes"]) == {"highs#0", "bb#1"}


def test_race_emits_winner_solution_verbatim():
    """The raced values are the winner's own solo solution, bit for bit."""
    raced = PortfolioSolver(
        backends=("highs", "bb"), time_limit=30.0, seed=1
    ).solve(_knapsack())
    winner = raced.stats.portfolio["winner"]
    solo = solve_model(_knapsack(), backend=winner)
    raced_vec = [raced.values[v] for v in sorted(raced.values, key=lambda v: v.index)]
    solo_vec = [solo.values[v] for v in sorted(solo.values, key=lambda v: v.index)]
    assert raced_vec == solo_vec


def test_same_seed_same_winner():
    def run(seed):
        solution = PortfolioSolver(
            backends=("highs", "bb"), time_limit=30.0, seed=seed
        ).solve(_knapsack())
        return solution.stats.portfolio["winner"], solution.objective

    first = run(7)
    assert run(7) == first  # deterministic rerun
    # Both backends prove within one poll tick on a model this small, so
    # the seeded permutation alone picks the winner — and some seed must
    # pick each of the two lanes.
    winners = {run(seed)[0] for seed in range(8)}
    assert winners == {"highs", "bb"}


def test_thread_cap_still_runs_all_lanes():
    raced = PortfolioSolver(
        backends=("highs", "bb"), time_limit=30.0, threads=1
    ).solve(_knapsack())
    assert raced.status is SolveStatus.OPTIMAL
    lanes = raced.stats.portfolio["lanes"]
    # With one slot the race decides after the first lane proves; the
    # second never needs to start.
    assert lanes["highs#0"]["started"] or lanes["bb#1"]["started"]


def test_caller_incumbent_seeds_the_bus():
    model = _knapsack()
    reference = solve_model(_knapsack(), backend="highs")
    by_index = {v.index: val for v, val in reference.values.items()}
    incumbent = {v: by_index[v.index] for v in model.variables}
    raced = PortfolioSolver(backends=("highs", "bb"), time_limit=30.0).solve(
        model, incumbent=incumbent
    )
    assert raced.status is SolveStatus.OPTIMAL
    assert raced.objective == pytest.approx(reference.objective)


# -- fault degradation --------------------------------------------------------
@pytest.mark.parametrize(
    "kind", ["crash", "error", "timeout", "corrupt", "infeasible", "incumbent"]
)
def test_lane_fault_degrades_to_survivor(kind):
    """One faulted lane never takes the race down with it."""
    with faults.inject(f"portfolio.cancel={kind}:1"):
        raced = PortfolioSolver(
            backends=("highs", "bb"), time_limit=30.0
        ).solve(_knapsack())
    assert raced.status is SolveStatus.OPTIMAL
    reference = solve_model(_knapsack(), backend="highs")
    assert raced.objective == pytest.approx(reference.objective)
    detail = raced.stats.portfolio
    faulted = [l for l in detail["lanes"].values() if l["fault"]]
    assert len(faulted) == 1 and faulted[0]["fault"] == kind


def test_all_lanes_faulted_still_never_raises():
    with faults.inject("portfolio.cancel=crash"):
        raced = PortfolioSolver(
            backends=("highs", "bb"), time_limit=10.0
        ).solve(_knapsack())
    # Nothing survived and nothing was seeded: an honest no-answer.
    assert raced.status in (SolveStatus.NO_SOLUTION, SolveStatus.FEASIBLE)


def test_all_lanes_faulted_falls_back_to_caller_incumbent():
    model = _knapsack()
    reference = solve_model(_knapsack(), backend="highs")
    by_index = {v.index: val for v, val in reference.values.items()}
    incumbent = {v: by_index[v.index] for v in model.variables}
    with faults.inject("portfolio.cancel=crash"):
        raced = PortfolioSolver(
            backends=("highs", "bb"), time_limit=10.0
        ).solve(model, incumbent=incumbent)
    assert raced.status is SolveStatus.FEASIBLE
    assert raced.objective == pytest.approx(reference.objective)


def test_poisoned_lane_bounds_never_combine():
    """A corrupt lane's (possibly bogus) dual bound cannot close a
    combined proof: poison drops it from ``best_bound``."""
    bus = IncumbentBus()
    bus.publish_bound("bad", 1000.0)
    bus.publish_incumbent("good", [1.0], 999.0)
    bus.poison("bad")
    assert bus.best_bound() is None  # nothing left to prove with


# -- backend cancel hooks -----------------------------------------------------
def test_bb_cancel_stops_promptly_without_proof():
    control = RunnerControl("bb#0")
    control.cancel()
    solution = BranchBoundSolver(control=control).solve(_knapsack())
    assert solution.status is not SolveStatus.OPTIMAL


def test_bb_adopts_bus_incumbent_and_publishes():
    """A bb lane wired to a bus publishes its incumbents/bounds there."""
    bus = IncumbentBus()
    control = RunnerControl("bb#0", bus=bus)
    model = _knapsack()
    solution = BranchBoundSolver(control=control).solve(model)
    assert solution.status is SolveStatus.OPTIMAL
    entry = bus.best_incumbent()
    assert entry is not None
    assert entry[1] == pytest.approx(solution.objective)
    assert bus.best_bound() == pytest.approx(solution.objective, abs=1e-6)


def test_known_runner_roster_is_stable():
    # The wire protocol and CLI complete against this tuple; growing it
    # is fine, renaming entries is a breaking change.
    assert set(KNOWN_RUNNERS) >= {"highs", "bb", "ordered:highs", "ordered:bb"}


# -- budget-aware lane ordering ------------------------------------------------
class _FakeRunner:
    def __init__(self, index, spec):
        self.index = index
        self.spec = spec


def test_order_lanes_by_win_rate_then_speed():
    solver = PortfolioSolver(
        backends=("highs", "bb", "ordered:highs"),
        threads=1,
        lane_stats={
            "highs": {"win_rate": 0.2, "mean_seconds": 0.5},
            "bb": {"win_rate": 0.8, "mean_seconds": 2.0},
            # ordered:highs absent: untried runners sort last.
        },
    )
    pending = [
        _FakeRunner(0, "highs"),
        _FakeRunner(1, "bb"),
        _FakeRunner(2, "ordered:highs"),
    ]
    ordered = [r.spec for r in solver._order_lanes(pending)]
    assert ordered == ["bb", "highs", "ordered:highs"]


def test_order_lanes_speed_breaks_win_rate_ties():
    solver = PortfolioSolver(
        backends=("highs", "bb"),
        threads=1,
        lane_stats={
            "highs": {"win_rate": 0.5, "mean_seconds": 3.0},
            "bb": {"win_rate": 0.5, "mean_seconds": 0.1},
        },
    )
    pending = [_FakeRunner(0, "highs"), _FakeRunner(1, "bb")]
    assert [r.spec for r in solver._order_lanes(pending)] == ["bb", "highs"]


def test_serialized_race_with_lane_stats_still_proves():
    solution = PortfolioSolver(
        backends=("highs", "bb"),
        threads=1,
        time_limit=30.0,
        lane_stats={"bb": {"win_rate": 1.0, "mean_seconds": 0.1}},
    ).solve(_knapsack())
    assert solution.status is SolveStatus.OPTIMAL


def test_lane_stats_from_metrics_roundtrip():
    from repro.ilp.portfolio import lane_stats_from_metrics

    metrics = {
        "counters": {
            'portfolio_wins_total{runner="bb"}': 3.0,
            'portfolio_losses_total{runner="bb"}': 1.0,
            'portfolio_losses_total{runner="highs"}': 4.0,
        },
        "histograms": {
            'portfolio_lane_seconds{runner="bb"}': {
                "sum": 2.0, "count": 4, "buckets": {"+Inf": 4},
            },
            'portfolio_lane_seconds{runner="highs"}': {
                "sum": 12.0, "count": 4, "buckets": {"+Inf": 4},
            },
        },
    }
    stats = lane_stats_from_metrics(metrics)
    assert stats["bb"]["win_rate"] == pytest.approx(0.75)
    assert stats["bb"]["mean_seconds"] == pytest.approx(0.5)
    assert stats["highs"]["win_rate"] == 0.0
    assert stats["highs"]["mean_seconds"] == pytest.approx(3.0)
    assert lane_stats_from_metrics({}) == {}
    assert lane_stats_from_metrics(None) == {}
