"""Own simplex vs. known optima and scipy cross-checks."""

import numpy as np
import pytest
from scipy import optimize

from repro.ilp import Model, SimplexSolver


def _lp(obj, constraints, bounds):
    model = Model()
    variables = [
        model.add_var(f"x{i}", lb=lo, ub=hi) for i, (lo, hi) in enumerate(bounds)
    ]
    for coeffs, sense, rhs in constraints:
        expr = sum(c * v for c, v in zip(coeffs, variables))
        if sense == "<=":
            model.add_constraint(expr <= rhs)
        elif sense == ">=":
            model.add_constraint(expr >= rhs)
        else:
            model.add_constraint(expr == rhs)
    model.set_objective(sum(c * v for c, v in zip(obj, variables)))
    return model, variables


def test_textbook_maximization():
    # max x + 2y s.t. x+y<=4, x+3y<=6 -> (3, 1), value 5
    model, _ = _lp(
        [-1, -2], [([1, 1], "<=", 4), ([1, 3], "<=", 6)], [(0, None), (0, None)]
    )
    result = SimplexSolver().solve(model)
    assert result.status == "optimal"
    assert result.objective == pytest.approx(-5.0)
    assert result.x == pytest.approx([3.0, 1.0])


def test_equality_and_free_variable():
    model, _ = _lp(
        [1, 0], [([1, 1], "=", 5), ([1, -1], ">=", -3)], [(None, None), (0, 10)]
    )
    result = SimplexSolver().solve(model)
    assert result.status == "optimal"
    assert result.objective == pytest.approx(1.0)


def test_infeasible_detected():
    model, _ = _lp([1], [([1], "<=", 1), ([1], ">=", 3)], [(0, None)])
    assert SimplexSolver().solve(model).status == "infeasible"


def test_unbounded_detected():
    model, _ = _lp([-1], [([0], "<=", 1)], [(0, None)])
    assert SimplexSolver().solve(model).status == "unbounded"


def test_degenerate_problem_terminates():
    # Multiple constraints active at the optimum (classic degeneracy).
    model, _ = _lp(
        [-1, -1],
        [([1, 0], "<=", 1), ([0, 1], "<=", 1), ([1, 1], "<=", 2)],
        [(0, None), (0, None)],
    )
    result = SimplexSolver().solve(model)
    assert result.status == "optimal"
    assert result.objective == pytest.approx(-2.0)


def test_upper_bounded_variables():
    model, _ = _lp([-1, -1], [([1, 1], "<=", 10)], [(0, 2), (0, 3)])
    result = SimplexSolver().solve(model)
    assert result.objective == pytest.approx(-5.0)


@pytest.mark.parametrize("seed", range(8))
def test_random_lps_match_scipy(seed):
    rng = np.random.default_rng(seed)
    n, m = 5, 4
    a_mat = rng.normal(size=(m, n))
    b = rng.uniform(1, 5, size=m)
    c = rng.normal(size=n)
    model, _ = _lp(
        c.tolist(),
        [(a_mat[i].tolist(), "<=", b[i]) for i in range(m)],
        [(0, 10)] * n,
    )
    ours = SimplexSolver().solve(model)
    ref = optimize.linprog(
        c, A_ub=a_mat, b_ub=b, bounds=[(0, 10)] * n, method="highs"
    )
    assert ours.status == "optimal" and ref.success
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
