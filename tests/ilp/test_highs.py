"""HiGHS backend behaviour."""

import pytest

from repro.ilp import HighsSolver, Model, SolveStatus


def test_optimal_knapsack():
    model = Model()
    a, b = model.add_binary("a"), model.add_binary("b")
    model.add_constraint(a + b <= 1)
    model.set_objective(-(3 * a + 2 * b))
    solution = HighsSolver().solve(model)
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(-3.0)
    assert solution.value_of(a) == 1 and solution.value_of(b) == 0


def test_infeasible():
    model = Model()
    z = model.add_binary("z")
    model.add_constraint(z >= 1)
    model.add_constraint(z <= 0)
    assert HighsSolver().solve(model).status is SolveStatus.INFEASIBLE


def test_unbounded():
    model = Model()
    x = model.add_var("x", lb=0, ub=None)
    model.set_objective(-x)
    status = HighsSolver().solve(model).status
    assert status in (SolveStatus.UNBOUNDED, SolveStatus.NO_SOLUTION)


def test_equality_constraints():
    model = Model()
    x = model.add_var("x", lb=0, ub=9, is_integer=True)
    y = model.add_var("y", lb=0, ub=9, is_integer=True)
    model.add_constraint(x + y == 7)
    model.add_constraint(x - y == 1)
    solution = HighsSolver().solve(model)
    assert solution.value_of(x) == 4 and solution.value_of(y) == 3


def test_stats_carry_backend_name():
    model = Model()
    x = model.add_binary("x")
    model.set_objective(x)
    solution = HighsSolver().solve(model)
    assert solution.stats.backend == "highs"
    assert solution.stats.time_seconds >= 0.0
