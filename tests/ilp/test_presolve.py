"""Bound-tightening presolve."""

import numpy as np

from repro.ilp import Model
from repro.ilp.presolve import fixed_variable_count, presolve_arrays


def test_singleton_row_fixes_variable():
    model = Model()
    x = model.add_var("x", lb=0, ub=10, is_integer=True)
    y = model.add_var("y", lb=0, ub=10, is_integer=True)
    model.add_constraint(x == 3)
    model.add_constraint(x + y <= 5)
    arrays, infeasible = presolve_arrays(model.to_arrays())
    assert not infeasible
    assert arrays["lb"][x.index] == arrays["ub"][x.index] == 3
    assert arrays["ub"][y.index] <= 2


def test_integer_bounds_rounded_inward():
    model = Model()
    x = model.add_var("x", lb=0, ub=10, is_integer=True)
    model.add_constraint(2 * x <= 7)  # x <= 3.5 -> 3
    arrays, infeasible = presolve_arrays(model.to_arrays())
    assert not infeasible
    assert arrays["ub"][x.index] == 3


def test_detects_infeasible_row():
    model = Model()
    x = model.add_binary("x")
    model.add_constraint(x >= 2)
    _, infeasible = presolve_arrays(model.to_arrays())
    assert infeasible


def test_original_arrays_untouched():
    model = Model()
    x = model.add_var("x", lb=0, ub=10)
    model.add_constraint(x <= 4)
    arrays = model.to_arrays()
    before = arrays["ub"].copy()
    presolve_arrays(arrays)
    assert np.array_equal(arrays["ub"], before)


def test_fixed_variable_count():
    model = Model()
    x = model.add_var("x", lb=2, ub=2)
    model.add_var("y", lb=0, ub=1)
    assert fixed_variable_count(model.to_arrays()) == 1
    assert x.lb == x.ub
