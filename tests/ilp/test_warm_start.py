"""Warm-started re-solves, incumbent/cutoff seeding, and node accounting.

The branch-and-bound rewrite leans on three contracts that must hold on
every model the suite uses:

* a warm-started simplex re-solve (parent basis, child bounds) reaches
  the same optimum a cold solve reaches;
* incumbent/cutoff seeding never changes the reported optimum, only the
  work needed to prove it;
* relaxations that return no verdict ("unknown") demote the result from
  OPTIMAL instead of being silently pruned.
"""

import numpy as np
import pytest

from repro.ilp import (
    BranchBoundSolver,
    Model,
    SimplexSolver,
    SolveStatus,
    solve_model,
)


def _lp(obj, constraints, bounds, integer=False):
    model = Model()
    variables = [
        model.add_var(f"x{i}", lb=lo, ub=hi, is_integer=integer)
        for i, (lo, hi) in enumerate(bounds)
    ]
    for coeffs, sense, rhs in constraints:
        expr = sum(c * v for c, v in zip(coeffs, variables))
        if sense == "<=":
            model.add_constraint(expr <= rhs)
        elif sense == ">=":
            model.add_constraint(expr >= rhs)
        else:
            model.add_constraint(expr == rhs)
    model.set_objective(sum(c * v for c, v in zip(obj, variables)))
    return model, variables


def _suite_lps():
    """The representative LP shapes used across the tests/ilp files."""
    yield _lp(
        [-1, -2], [([1, 1], "<=", 4), ([1, 3], "<=", 6)], [(0, None), (0, None)]
    )[0]
    yield _lp(
        [1, 0], [([1, 1], "=", 5), ([1, -1], ">=", -3)], [(None, None), (0, 10)]
    )[0]
    yield _lp(
        [-1, -1],
        [([1, 0], "<=", 1), ([0, 1], "<=", 1), ([1, 1], "<=", 2)],
        [(0, None), (0, None)],
    )[0]
    yield _lp([-1, -1], [([1, 1], "<=", 10)], [(0, 2), (0, 3)])[0]
    for seed in range(4):
        rng = np.random.default_rng(seed)
        n, m = 5, 4
        a_mat = rng.normal(size=(m, n))
        b = rng.uniform(1, 5, size=m)
        c = rng.normal(size=n)
        yield _lp(
            c.tolist(),
            [(a_mat[i].tolist(), "<=", b[i]) for i in range(m)],
            [(0, 10)] * n,
        )[0]


@pytest.mark.parametrize("index", range(8))
def test_warm_restart_matches_cold_after_bound_change(index):
    """Parent-basis warm solve == cold solve on tightened child bounds."""
    model = list(_suite_lps())[index]
    solver = SimplexSolver()
    arrays = model.to_arrays()
    parent = solver.solve_arrays(arrays)
    assert parent.status == "optimal" and parent.basis is not None

    # Tighten each variable's upper bound in turn (a branching step).
    for j in range(len(arrays["lb"])):
        child = dict(arrays)
        ub = arrays["ub"].copy()
        hi = ub[j] if np.isfinite(ub[j]) else 4.0
        ub[j] = max(arrays["lb"][j], 0.5 * hi)
        child["ub"] = ub
        warm = solver.solve_arrays(child, warm_basis=parent.basis)
        cold = solver.solve_arrays(child)
        assert warm.status == cold.status
        if cold.status == "optimal":
            assert warm.objective == pytest.approx(cold.objective, abs=1e-6)


@pytest.mark.parametrize("seed", range(6))
def test_bb_backends_and_seeding_agree(seed):
    """simplex-engine B&B == scipy-engine B&B == HiGHS, seeded or not."""
    rng = np.random.default_rng(seed)
    n = 10
    weights = rng.integers(1, 12, n)
    values = rng.integers(1, 20, n)
    model, xs = _lp(
        [-int(v) for v in values],
        [([int(w) for w in weights], "<=", int(weights.sum() // 2))],
        [(0, 1)] * n,
        integer=True,
    )
    reference = solve_model(model, backend="highs")
    assert reference.status is SolveStatus.OPTIMAL

    for relaxation in ("scipy", "simplex"):
        sol = BranchBoundSolver(relaxation=relaxation).solve(model)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(reference.objective)

    # Seeding with the known optimum keeps the optimum.
    seeded = BranchBoundSolver().solve(model, incumbent=reference.values)
    assert seeded.status is SolveStatus.OPTIMAL
    assert seeded.objective == pytest.approx(reference.objective)

    # A cutoff at the optimum means nothing strictly better exists.
    cut = BranchBoundSolver().solve(model, cutoff=reference.objective)
    assert cut.status is SolveStatus.NO_SOLUTION

    # The simplex engine actually exercises the warm path on real trees.
    warm_sol = BranchBoundSolver(relaxation="simplex").solve(model)
    if warm_sol.stats.nodes > 1:
        assert warm_sol.stats.warm_starts > 0


def test_node_accounting_counts_every_explored_node():
    """Every popped-and-solved node counts once — including integral ones."""
    rng = np.random.default_rng(3)
    n = 12
    weights = rng.integers(2, 9, n)
    values = rng.integers(1, 30, n)
    model, _ = _lp(
        [-int(v) for v in values],
        [([int(w) for w in weights], "<=", int(weights.sum() // 3))],
        [(0, 1)] * n,
        integer=True,
    )
    sol = BranchBoundSolver(rounding_heuristic=False).solve(model)
    assert sol.status is SolveStatus.OPTIMAL
    # The root is node 0; every other LP solved is a node.
    assert sol.stats.lp_solves == sol.stats.nodes + 1
    assert sol.stats.nodes > 0


def test_unknown_relaxation_demotes_optimality(monkeypatch):
    """A no-verdict LP must not be silently pruned as infeasible."""
    from repro.ilp import branch_bound as bb

    rng = np.random.default_rng(3)
    n = 12
    weights = rng.integers(2, 9, n)
    values = rng.integers(1, 30, n)
    model, _ = _lp(
        [-int(v) for v in values],
        [([int(w) for w in weights], "<=", int(weights.sum() // 3))],
        [(0, 1)] * n,
        integer=True,
    )
    # Sanity: this model branches (see the node-accounting test above).
    real_linprog = bb.optimize.linprog
    calls = {"n": 0}

    def flaky_linprog(*args, **kwargs):
        calls["n"] += 1
        result = real_linprog(*args, **kwargs)
        if calls["n"] == 2:  # first child node: pretend numerical failure
            result.status = 4
            result.success = False
        return result

    monkeypatch.setattr(bb.optimize, "linprog", flaky_linprog)
    sol = BranchBoundSolver(rounding_heuristic=False).solve(model)
    assert sol.stats.unknown_lps >= 1
    # With an undecided subtree the search may still find the incumbent,
    # but it must not claim a proof.
    assert sol.status is not SolveStatus.OPTIMAL


@pytest.mark.parametrize("seed", range(10))
def test_rounding_never_returns_infeasible_incumbent(seed):
    """_try_rounding only ever proposes verified-feasible points."""
    from repro.ilp.branch_bound import _Relaxation
    from repro.ilp.presolve import presolve_arrays

    rng = np.random.default_rng(seed)
    n, m = 8, 5
    a_mat = rng.integers(-4, 9, size=(m, n))
    b = rng.integers(4, 30, size=m)
    c = rng.normal(size=n)
    model, _ = _lp(
        c.tolist(),
        [(a_mat[i].tolist(), "<=", int(b[i])) for i in range(m)],
        [(0, 3)] * n,
        integer=True,
    )
    arrays, infeasible = presolve_arrays(model.to_arrays())
    if infeasible:
        pytest.skip("presolve already proved infeasibility")
    oracle = _Relaxation(arrays)
    status, _obj, x, _basis = oracle.solve(arrays["lb"], arrays["ub"])
    if status != "optimal":
        pytest.skip(f"root relaxation {status}")
    solver = BranchBoundSolver()
    int_idx = np.where(arrays["integrality"])[0]
    rounded = solver._try_rounding(oracle, x, int_idx)
    if rounded is not None:
        candidate, obj = rounded
        assert oracle.check_point(candidate)
        assert np.all(candidate >= arrays["lb"] - 1e-9)
        assert np.all(candidate <= arrays["ub"] + 1e-9)
        assert np.allclose(
            candidate[int_idx], np.round(candidate[int_idx]), atol=1e-9
        )
        assert obj == pytest.approx(float(np.dot(arrays["c"], candidate)))
