"""Deadline: the shared wall-clock budget for the optimize pipeline."""

import pytest

from repro.tools.deadline import Deadline


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_unlimited_deadline_never_expires():
    clock = FakeClock()
    deadline = Deadline(None, clock=clock)
    clock.advance(1e9)
    assert deadline.budget is None
    assert deadline.remaining() is None
    assert not deadline.expired
    assert deadline.bound(None) is None
    assert deadline.bound(42.0) == 42.0


def test_remaining_counts_down_and_clips_at_zero():
    clock = FakeClock()
    deadline = Deadline(10.0, clock=clock)
    assert deadline.remaining() == 10.0
    clock.advance(4.0)
    assert deadline.remaining() == pytest.approx(6.0)
    assert deadline.elapsed() == pytest.approx(4.0)
    assert not deadline.expired
    clock.advance(7.0)
    assert deadline.remaining() == 0.0
    assert deadline.expired


def test_bound_returns_the_tighter_limit():
    clock = FakeClock()
    deadline = Deadline(10.0, clock=clock)
    # remaining (10) is looser than the explicit limit
    assert deadline.bound(3.0) == 3.0
    clock.advance(9.0)
    # remaining (1) is now the tighter one
    assert deadline.bound(3.0) == pytest.approx(1.0)
    # an unlimited explicit limit still gets clipped to the budget
    assert deadline.bound(None) == pytest.approx(1.0)


def test_start_alias_and_negative_budget_clamped():
    clock = FakeClock()
    deadline = Deadline.start(-5.0, clock=clock)
    assert deadline.budget == 0.0
    assert deadline.expired


def test_repr_mentions_budget():
    assert "unlimited" in repr(Deadline(None))
    assert "budget=5" in repr(Deadline(5.0, clock=FakeClock()))
