"""Robustness of the parallel routine fan-out.

Covers the crash-recovery ladder (broken pool -> rebuilt pool ->
in-process retry), the budget-to-``time_limit`` wiring that lets an
over-budget routine degrade instead of stalling, and the
quality-carrying outcome summaries.
"""

import os

import pytest

from repro.sched.scheduler import ScheduleFeatures
from repro.tools import faults
from repro.tools.parallel import (
    RoutineOutcome,
    _bound_features,
    run_routines_parallel,
)

FAST = dict(scale=0.4, sim_invocations=30)
FEATURES = ScheduleFeatures(time_limit=30)


@pytest.fixture
def fault_env():
    """Set REPRO_FAULTS for the test (inherited by pool workers)."""

    def setenv(spec):
        os.environ[faults.ENV_VAR] = spec
        faults.reset_env_cache()

    yield setenv
    os.environ.pop(faults.ENV_VAR, None)
    faults.reset_env_cache()


# -- _bound_features ----------------------------------------------------------


def test_bound_features_no_timeout_is_identity():
    assert _bound_features(FEATURES, None) is FEATURES
    assert _bound_features(None, None) is None


def test_bound_features_takes_the_tighter_limit():
    assert _bound_features(FEATURES, 10.0).time_limit == 10.0
    assert _bound_features(FEATURES, 300.0).time_limit == 30
    unlimited = ScheduleFeatures(time_limit=None)
    assert _bound_features(unlimited, 7.5).time_limit == 7.5


def test_bound_features_builds_defaults_when_missing():
    bounded = _bound_features(None, 5.0)
    assert bounded is not None
    assert bounded.time_limit == 5.0


# -- crash recovery -----------------------------------------------------------


def test_worker_crash_recovers_with_retried_outcomes(fault_env):
    """A crashing worker breaks the pool; the batch must still converge to
    all-ok outcomes, recovered routines flagged ``retried``.

    Every pool worker process starts with a fresh firing counter, so an
    unbounded ``worker=crash`` kills each pool round; convergence relies
    on the in-process retry, which never fires the ``worker`` site.
    """
    fault_env("worker=crash")
    names = ["xfree", "firstone"]
    outcomes = run_routines_parallel(
        names, features=FEATURES, max_workers=2, **FAST
    )
    assert [o.name for o in outcomes] == names
    assert all(o.ok for o in outcomes), [o.error for o in outcomes]
    assert all(o.retried for o in outcomes)
    for outcome in outcomes:
        summary = outcome.summary()
        assert summary["retried"] is True
        assert summary["quality"] in (
            "optimal", "incumbent", "phase1", "fallback_input",
        )
        assert "table1" in summary and "table2" in summary


def test_worker_error_is_reported_not_raised(fault_env):
    """A worker that raises (rather than dies) fails its routine in place —
    an ``ok=False`` outcome, no exception, and the batch keeps going.

    (A single-routine batch clamps to ``max_workers=1`` and runs
    in-process, where the ``worker`` site is exempt — so this needs two.)
    """
    fault_env("worker=error")
    names = ["xfree", "firstone"]
    outcomes = run_routines_parallel(
        names, features=FEATURES, max_workers=2, **FAST
    )
    assert [o.name for o in outcomes] == names
    for outcome in outcomes:
        assert not outcome.ok
        assert "injected worker fault" in outcome.error
        summary = outcome.summary()
        assert summary["ok"] is False and "error" in summary


# -- budget enforcement -------------------------------------------------------


def test_tiny_budget_degrades_in_process_instead_of_stalling():
    """max_workers=1 with a near-zero budget: the deadline reaches the
    solves through ``time_limit``, so the routine comes back with a
    ``fallback_input`` experiment rather than hanging or raising."""
    outcomes = run_routines_parallel(
        ["xfree"], features=FEATURES, max_workers=1, timeout=1e-4, **FAST
    )
    (outcome,) = outcomes
    assert outcome.experiment is not None
    result = outcome.experiment.result
    assert result.quality == "fallback_input"
    assert result.fallback_reason.kind == "deadline"
    # The post-hoc batch check still reports the (tiny) budget overrun.
    assert not outcome.ok
    assert "budget" in outcome.error


def test_no_faults_sequential_batch_is_clean():
    outcomes = run_routines_parallel(
        ["xfree"], features=FEATURES, max_workers=1, **FAST
    )
    (outcome,) = outcomes
    assert outcome.ok and not outcome.retried
    summary = outcome.summary()
    assert summary["quality"] == "optimal"
    assert "fallback_reason" not in summary
    assert "retried" not in summary


def test_empty_batch_returns_empty_list():
    assert run_routines_parallel([]) == []


def test_summary_shape_for_failures():
    outcome = RoutineOutcome("x", False, 1.0, error="boom", retried=True)
    assert outcome.summary() == {
        "routine": "x",
        "ok": False,
        "elapsed": 1.0,
        "retried": True,
        "error": "boom",
    }
