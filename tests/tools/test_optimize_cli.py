"""tia-opt CLI."""

import pytest

from repro.ir.parser import parse_function
from repro.tools.optimize import main
from repro.workloads.samples import fig4_speculation_sample


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "fig4.tia"
    path.write_text(fig4_speculation_sample())
    return path


def test_optimizes_to_stdout(asm_file, capsys):
    rc = main([str(asm_file), "--time-limit", "30"])
    assert rc == 0
    captured = capsys.readouterr()
    assert ".proc speculation_demo" in captured.out
    assert "verification passed" in captured.err
    # Output parses back and preserves structure (plus recovery blocks
    # for any used speculation groups).
    fn = parse_function(captured.out)
    names = [b.name for b in fn.blocks]
    assert names[:3] == ["A", "B", "C"]
    assert all(n.startswith("recover_") for n in names[3:])


def test_output_file(asm_file, tmp_path, capsys):
    out = tmp_path / "opt.tia"
    rc = main([str(asm_file), "-o", str(out), "--time-limit", "30"])
    assert rc == 0
    fn = parse_function(out.read_text())
    mnemonics = {i.mnemonic for i in fn.all_instructions()}
    assert "ld8.s" in mnemonics  # speculation applied


def test_feature_flags(asm_file, capsys):
    rc = main(
        [
            str(asm_file),
            "--no-speculation",
            "--no-data-speculation",
            "--time-limit",
            "30",
        ]
    )
    assert rc == 0
    captured = capsys.readouterr()
    fn = parse_function(captured.out)
    mnemonics = {i.mnemonic for i in fn.all_instructions()}
    assert "ld8.s" not in mnemonics


def test_schedule_flag(asm_file, capsys):
    rc = main([str(asm_file), "--schedule", "--time-limit", "30"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "length" in captured.err
