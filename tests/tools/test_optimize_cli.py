"""tia-opt CLI."""

import pytest

from repro.ir.parser import parse_function
from repro.tools.optimize import main
from repro.workloads.samples import fig4_speculation_sample


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "fig4.tia"
    path.write_text(fig4_speculation_sample())
    return path


def test_optimizes_to_stdout(asm_file, capsys):
    rc = main([str(asm_file), "--time-limit", "30"])
    assert rc == 0
    captured = capsys.readouterr()
    assert ".proc speculation_demo" in captured.out
    assert "verification passed" in captured.err
    # Output parses back and preserves structure (plus recovery blocks
    # for any used speculation groups).
    fn = parse_function(captured.out)
    names = [b.name for b in fn.blocks]
    assert names[:3] == ["A", "B", "C"]
    assert all(n.startswith("recover_") for n in names[3:])


def test_output_file(asm_file, tmp_path, capsys):
    out = tmp_path / "opt.tia"
    rc = main([str(asm_file), "-o", str(out), "--time-limit", "30"])
    assert rc == 0
    fn = parse_function(out.read_text())
    mnemonics = {i.mnemonic for i in fn.all_instructions()}
    assert "ld8.s" in mnemonics  # speculation applied


def test_feature_flags(asm_file, capsys):
    rc = main(
        [
            str(asm_file),
            "--no-speculation",
            "--no-data-speculation",
            "--time-limit",
            "30",
        ]
    )
    assert rc == 0
    captured = capsys.readouterr()
    fn = parse_function(captured.out)
    mnemonics = {i.mnemonic for i in fn.all_instructions()}
    assert "ld8.s" not in mnemonics


def test_schedule_flag(asm_file, capsys):
    rc = main([str(asm_file), "--schedule", "--time-limit", "30"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "length" in captured.err


def test_trace_and_metrics_exports(asm_file, tmp_path, capsys):
    import json

    from repro.obs import core as obs
    from repro.obs.export import validate_chrome_trace, validate_metrics

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    events_path = tmp_path / "events.jsonl"
    try:
        rc = main(
            [
                str(asm_file),
                "--time-limit", "30",
                "--trace", str(trace_path),
                "--metrics", str(metrics_path),
                "--events", str(events_path),
            ]
        )
    finally:
        obs.disable()
    assert rc == 0
    trace = json.loads(trace_path.read_text())
    assert validate_chrome_trace(trace) == []
    names = {e["name"] for e in trace["traceEvents"] if e.get("ph") == "X"}
    assert {"optimize", "solve.phase1", "ilp.solve"} <= names
    metrics = json.loads(metrics_path.read_text())
    assert validate_metrics(metrics) == []
    assert any(
        k.startswith("routine_fallback_total") for k in metrics["counters"]
    )
    lines = events_path.read_text().splitlines()
    assert json.loads(lines[0])["type"] == "meta"


def test_prom_metrics_suffix(asm_file, tmp_path, capsys):
    from repro.obs import core as obs

    prom = tmp_path / "metrics.prom"
    try:
        rc = main([str(asm_file), "--time-limit", "30", "--metrics", str(prom)])
    finally:
        obs.disable()
    assert rc == 0
    assert "# TYPE" in prom.read_text()


def test_report_includes_phase_breakdown(asm_file, capsys):
    rc = main([str(asm_file), "--time-limit", "30"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "phases:" in captured.err
    assert "phase 1" in captured.err
