"""Report rendering and published-value tables."""

import pytest

from repro.sched.scheduler import ScheduleFeatures
from repro.tools.experiments import run_routine
from repro.tools.report import (
    PAPER_FIG7,
    PAPER_TABLE1,
    PAPER_TABLE2,
    render_fig7,
    render_table1,
    render_table2,
)


@pytest.fixture(scope="module")
def experiments():
    features = ScheduleFeatures(time_limit=30, max_hops=3)
    return [
        run_routine(name, features=features, scale=0.4, sim_invocations=30)
        for name in ("firstone", "xfree")
    ]


def test_paper_tables_complete():
    names = set(PAPER_TABLE1)
    assert names == set(PAPER_TABLE2)
    assert len(names) == 9
    # Spot values from the paper.
    assert PAPER_TABLE1["longest_match"]["static_red"] == pytest.approx(0.44)
    assert PAPER_TABLE2["qSort3"]["nodes"] == 914
    assert PAPER_FIG7["+partial-ready"] == pytest.approx(0.31)


def test_render_table1_shows_both_sections(experiments):
    text = render_table1(experiments)
    assert "measured (this reproduction)" in text
    assert "published (paper)" in text
    assert "firstone" in text and "xfree" in text
    assert "Average" in text


def test_render_table2(experiments):
    text = render_table2(experiments)
    assert "#Nodes" in text
    assert "CPLEX" in text


def test_render_fig7_structure():
    fake = {
        label: {"avg_reduction": 0.2 + i * 0.03, "avg_time": float(i)}
        for i, label in enumerate(PAPER_FIG7)
    }
    text = render_fig7(fake)
    assert "base" in text and "+partial-ready" in text
    assert "paper" in text


def test_cli_table1(capsys):
    from repro.tools.report import main

    rc = main(["table1", "--scale", "0.4", "--routines", "firstone"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "firstone" in out


def test_json_payload_carries_quality_and_phases(experiments):
    import json

    from repro.tools.report import json_payload

    doc = json_payload("table2", experiments=experiments)
    text = json.dumps(doc)  # must be JSON-serializable as-is
    assert "firstone" in text
    for row in doc["rows"]:
        assert row["quality"] in ("optimal", "incumbent", "phase1",
                                  "fallback_input")
        assert "solve.phase1" in row["phases"]
        assert row["phases"]["optimize"]["seconds"] > 0
        assert row["table2"]["routine"] == row["routine"]
    assert doc["paper"] == PAPER_TABLE2


def test_report_cli_json_flag(capsys):
    import json

    from repro.tools.report import main

    rc = main(["table2", "--routines", "firstone", "--scale", "0.4", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["artifact"] == "table2"
    assert doc["rows"][0]["routine"] == "firstone"
    assert "phases" in doc["rows"][0]
