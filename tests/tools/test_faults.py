"""Fault-injection harness: spec parsing, activation, and mangling."""

import pytest

from repro.ilp.expr import Var
from repro.ilp.status import Solution, SolveStatus
from repro.tools import faults


# -- parsing ------------------------------------------------------------------


def test_parse_empty_spec_is_none():
    assert faults.FaultPlan.parse("") is None
    assert faults.FaultPlan.parse("   ") is None
    assert faults.FaultPlan.parse(None) is None
    assert faults.FaultPlan.parse(" , ,") is None


def test_parse_multiple_entries_with_counts():
    plan = faults.FaultPlan.parse("solve.phase1=timeout, bundle=error:2")
    assert plan.fire("solve.phase1") == "timeout"
    assert plan.fire("bundle") == "error"
    assert plan.fire("bundle") == "error"
    assert plan.fire("bundle") is None  # the :2 budget is spent
    assert plan.fire("solve.phase1") == "timeout"  # unlimited keeps firing
    assert plan.fire("verify") is None  # unlisted site never fires


@pytest.mark.parametrize(
    "spec",
    [
        "nosuchsite=timeout",
        "solve.phase1=nosuchkind",
        "solve.phase1=timeout:0",
        "solve.phase1=timeout:-1",
    ],
)
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        faults.FaultPlan.parse(spec)


# -- activation ---------------------------------------------------------------


def test_no_active_plan_means_no_fault():
    assert faults.active_plan() is None
    assert faults.fire("solve.phase1") is None


def test_fire_with_no_site_never_fires():
    with faults.inject("solve.phase1=timeout"):
        assert faults.fire(None) is None
        assert faults.fire("solve.phase1") == "timeout"


def test_inject_context_manager_installs_and_uninstalls():
    with faults.inject("verify=error:1") as plan:
        assert faults.active_plan() is plan
        assert faults.fire("verify") == "error"
        assert faults.fire("verify") is None
    assert faults.active_plan() is None


def test_inject_empty_spec_yields_none():
    with faults.inject("") as plan:
        assert plan is None
        assert faults.fire("verify") is None


def test_nested_injection_innermost_wins():
    with faults.inject("solve.phase1=timeout"):
        with faults.inject("solve.phase1=infeasible") as inner:
            assert faults.active_plan() is inner
            assert faults.fire("solve.phase1") == "infeasible"
        assert faults.fire("solve.phase1") == "timeout"


def test_env_plan_counts_across_calls(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "bundle=error:1")
    faults.reset_env_cache()
    try:
        assert faults.fire("bundle") == "error"
        # Same cached plan: the single firing is spent for this process.
        assert faults.fire("bundle") is None
        faults.reset_env_cache()
        # A fresh parse restores the budget.
        assert faults.fire("bundle") == "error"
    finally:
        faults.reset_env_cache()


def test_installed_plan_shadows_env(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "bundle=error")
    faults.reset_env_cache()
    try:
        with faults.inject("verify=error"):
            assert faults.fire("bundle") is None
            assert faults.fire("verify") == "error"
        assert faults.fire("bundle") == "error"
    finally:
        faults.reset_env_cache()


# -- solution mangling --------------------------------------------------------


def _solution(status, values=None):
    return Solution(status, objective=1.0, values=values or {})


def test_demote_to_feasible_drops_only_the_proof():
    v = Var(0, "x", ub=1, is_integer=True)
    optimal = _solution(SolveStatus.OPTIMAL, {v: 1.0})
    demoted = faults.demote_to_feasible(optimal)
    assert demoted.status is SolveStatus.FEASIBLE
    assert demoted.objective == optimal.objective
    assert demoted.values is optimal.values
    # Anything below OPTIMAL passes through untouched.
    feasible = _solution(SolveStatus.FEASIBLE)
    assert faults.demote_to_feasible(feasible) is feasible


def test_corrupt_solution_clears_lowest_set_integers():
    ints = [Var(i, f"x{i}", ub=1, is_integer=True) for i in range(5)]
    cont = Var(5, "y", is_integer=False)
    values = {var: 1.0 for var in ints}
    values[cont] = 3.5
    solution = _solution(SolveStatus.OPTIMAL, values)
    corrupted = faults.corrupt_solution(solution, flips=3)
    assert [corrupted.values[v] for v in ints] == [0.0, 0.0, 0.0, 1.0, 1.0]
    assert corrupted.values[cont] == 3.5  # continuous vars untouched


def test_corrupt_solution_tolerates_empty_values():
    empty = _solution(SolveStatus.NO_SOLUTION, {})
    assert faults.corrupt_solution(empty) is empty


# -- fail-fast configuration errors -------------------------------------------


def test_bad_specs_raise_the_dedicated_config_error():
    with pytest.raises(faults.FaultConfigError) as excinfo:
        faults.FaultPlan.parse("nosuchsite=timeout")
    # The message names the offender and lists every valid site.
    message = str(excinfo.value)
    assert "nosuchsite" in message
    for site in faults.SITES:
        assert site in message


def test_bad_kind_message_lists_valid_kinds():
    with pytest.raises(faults.FaultConfigError) as excinfo:
        faults.FaultPlan.parse("bundle=explode")
    message = str(excinfo.value)
    assert "explode" in message
    for kind in faults.KINDS:
        assert kind in message


def test_config_error_is_a_value_error():
    # Callers that predate FaultConfigError catch ValueError; keep them.
    assert issubclass(faults.FaultConfigError, ValueError)


def test_parse_source_prefixes_the_error():
    with pytest.raises(faults.FaultConfigError, match="REPRO_FAULTS"):
        faults.FaultPlan.parse("bundle", source="REPRO_FAULTS")


def test_validate_env_raises_eagerly(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "solve.phase1=timeout:x")
    with pytest.raises(faults.FaultConfigError, match=faults.ENV_VAR):
        faults.validate_env()


def test_validate_env_accepts_good_and_empty_specs(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    assert faults.validate_env() is None
    monkeypatch.setenv(faults.ENV_VAR, "solve.phase1=timeout:2")
    plan = faults.validate_env()
    assert plan.fire("solve.phase1") == "timeout"


def test_validate_env_does_not_consume_active_budgets(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "bundle=error:1")
    faults.reset_env_cache()
    try:
        faults.validate_env()  # parses a *fresh* plan
        assert faults.fire("bundle") == "error"  # budget still intact
        assert faults.fire("bundle") is None
    finally:
        monkeypatch.delenv(faults.ENV_VAR)
        faults.reset_env_cache()
