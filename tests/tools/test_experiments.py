"""Experiment driver (small-scale smoke coverage)."""

import pytest

from repro.sched.scheduler import ScheduleFeatures
from repro.tools.experiments import (
    FIG7_LEVELS,
    default_features,
    run_routine,
)


@pytest.fixture(scope="module")
def xfree_experiment():
    return run_routine(
        "xfree",
        features=ScheduleFeatures(time_limit=30, max_hops=3),
        scale=0.5,
        sim_invocations=40,
    )


def test_table1_row_columns(xfree_experiment):
    row = xfree_experiment.table1_row()
    expected = {
        "routine",
        "program",
        "input_set",
        "weight",
        "speedup_program",
        "speedup_routine",
        "static_red",
        "ins_in",
        "ins_out",
        "delta_ins",
        "delta_bundles",
        "ipc_in",
        "ipc_out",
    }
    assert expected <= set(row)
    assert row["routine"] == "xfree"
    assert 0 <= row["static_red"] <= 1


def test_table2_row_columns(xfree_experiment):
    row = xfree_experiment.table2_row()
    assert row["constraints"] > 0 and row["variables"] > 0
    assert row["spec_poss"] >= row["spec_out"] >= 0


def test_speedups_consistent(xfree_experiment):
    assert xfree_experiment.routine_speedup >= 1.0
    assert 1.0 <= xfree_experiment.program_speedup <= (
        xfree_experiment.routine_speedup + 1e-9
    )


def test_simulation_pairs_same_trace(xfree_experiment):
    # Identical instruction streams executed: input vs output only differ
    # by compensation/speculation code, so counts are close.
    sim_in, sim_out = xfree_experiment.sim_in, xfree_experiment.sim_out
    assert sim_in.instructions > 0 and sim_out.instructions > 0
    assert sim_out.cycles <= sim_in.cycles


def test_fig7_levels_ordered():
    labels = [label for label, _ in FIG7_LEVELS]
    assert labels == ["base", "+speculation", "+cyclic", "+partial-ready"]
    base_overrides = dict(FIG7_LEVELS)["base"]
    assert base_overrides["speculation"] is False


def test_default_features_env(monkeypatch):
    monkeypatch.setenv("REPRO_TIME_LIMIT", "7")
    features = default_features()
    assert features.time_limit == 7.0
