"""Cross-process observability through the parallel fan-out.

Workers record into their own (reset) recorder, ship a snapshot back on
the outcome, and the parent merges worker events as distinct pid lanes.
"""

import os

import pytest

from repro.obs import core as obs
from repro.obs import export
from repro.sched.scheduler import ScheduleFeatures
from repro.tools import faults
from repro.tools.parallel import run_routines_parallel

FAST = dict(scale=0.4, sim_invocations=30)
FEATURES = ScheduleFeatures(time_limit=30)


@pytest.fixture
def recording():
    """Recording on in the parent; forked workers inherit ENABLED."""
    obs.disable()
    obs.enable()
    yield obs
    obs.disable()


@pytest.fixture
def fault_env():
    def setenv(spec):
        os.environ[faults.ENV_VAR] = spec
        faults.reset_env_cache()

    yield setenv
    os.environ.pop(faults.ENV_VAR, None)
    faults.reset_env_cache()


def test_worker_events_merge_with_distinct_pid_lanes(recording):
    outcomes = run_routines_parallel(
        ["firstone", "xfree"], features=FEATURES, max_workers=2, **FAST
    )
    assert all(o.ok for o in outcomes)
    assert all(o.obs is not None for o in outcomes)
    parent_pid = os.getpid()
    routine_pids = {
        e["pid"]
        for e in obs.recorder().events
        if e["name"] == "optimize"
    }
    assert len(routine_pids) == 2
    assert parent_pid not in routine_pids
    # Each worker lane is labeled, parent lane preserved.
    labels = obs.recorder().process_labels
    for pid in routine_pids:
        assert labels[pid] == f"worker pid {pid}"
    assert parent_pid in labels
    # The parent's own batch span is on the parent lane.
    batch = next(
        e for e in obs.recorder().events if e["name"] == "parallel.batch"
    )
    assert batch["pid"] == parent_pid
    # Merged metrics carry the fallback tier for every routine.
    dump = export.metrics_dict()
    for name in ("firstone", "xfree"):
        assert any(
            f'routine="{name}"' in key and key.startswith("routine_fallback")
            for key in dump["counters"]
        )
    assert export.validate_chrome_trace(export.chrome_trace()) == []


def test_solver_insight_survives_the_pool_pickle(recording):
    """Gap timelines, cut attribution and paper metrics cross processes."""
    outcomes = run_routines_parallel(
        ["firstone", "xfree"], features=FEATURES, max_workers=2, **FAST
    )
    assert all(o.ok for o in outcomes)
    for outcome in outcomes:
        trace = outcome.experiment.result.trace
        # trace.solves crossed the pickle boundary as plain dicts with
        # closed timelines on every recorded solve.
        assert trace.solves, outcome.name
        for entry in trace.solves:
            assert entry["gap_timeline"]["closed"], entry["site"]
            assert len(entry["gap_timeline"]["samples"]) >= 2
        paper = trace.paper_metrics
        assert paper["routine"] == outcome.name
        assert 0.0 <= paper["nop_density_out"] <= 1.0
        # summary() exposes the analytics row and the final gap.
        digest = outcome.summary()
        assert digest["paper_metrics"] == paper
        assert "gap" in digest
    # Worker-side solve spans (with their timelines) merged into the
    # parent recorder's trace for dashboard rendering.
    solve_spans = [
        e for e in obs.recorder().events
        if e["name"].startswith("solve.") and "gap_timeline" in e.get("args", {})
    ]
    assert len(solve_spans) >= 2


def test_worker_traces_survive_crash_retry(recording, fault_env):
    """worker=crash breaks the pool; retries must still deliver traces."""
    fault_env("worker=crash:1")
    outcomes = run_routines_parallel(
        ["firstone", "xfree"], features=FEATURES, max_workers=2, **FAST
    )
    assert all(o.ok for o in outcomes)
    assert any(o.retried for o in outcomes)
    # Every routine appears in the merged trace, whichever path ran it
    # (second pool lane or the in-process retry on the parent lane).
    optimize_count = sum(
        1 for e in obs.recorder().events if e["name"] == "optimize"
    )
    assert optimize_count == 2
    dump = export.metrics_dict()
    assert dump["counters"].get("pool_rebuilds_total", 0) >= 1
    for o in outcomes:
        assert any(
            f'routine="{o.name}"' in key and key.startswith("routine_fallback")
            for key in dump["counters"]
        )


def test_bad_fault_spec_fails_fast_before_spawning(fault_env):
    fault_env("nosuchsite=timeout")
    with pytest.raises(faults.FaultConfigError, match="nosuchsite"):
        run_routines_parallel(
            ["firstone"], features=FEATURES, max_workers=2, **FAST
        )


def test_bad_fault_kind_fails_fast_sequentially(fault_env):
    fault_env("solve.phase1=nosuchkind")
    with pytest.raises(faults.FaultConfigError, match="nosuchkind"):
        run_routines_parallel(
            ["firstone"], features=FEATURES, max_workers=1, **FAST
        )
