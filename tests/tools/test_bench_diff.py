"""tia-bench-diff: noise-aware snapshot comparison and the CI gate."""

import copy
import json

import pytest

from repro.tools.bench_diff import (
    classify,
    diff_snapshots,
    flatten,
    main,
    median_snapshot,
)

BASE = {
    "seed_commit": "abc1234",
    "smoke": {
        "sweep": {
            "scale": 0.25,
            "workers": 4,
            "current_path_seconds": 20.0,
            "speedup": 1.5,
            "objectives_match": True,
            "all_solved": True,
        },
        "bb_throughput": {
            "current_nodes_per_sec": 400.0,
            "current_seconds": 1.0,
        },
        "cut_resolve": {"incremental_seconds": 0.015, "speedup": 1.5},
        "obs_overhead": {"enabled_overhead_ratio": 1.0},
        "chaos": {"failures": []},
    },
}


def _flat(doc):
    return flatten(doc)


def test_identical_snapshots_pass():
    report = diff_snapshots(_flat(BASE), _flat(BASE))
    assert report["verdict"] == "pass"
    assert report["findings"] == []


def test_direction_classification():
    assert classify("a.current_seconds") == ("lower", "seconds")
    assert classify("a.presolve_seconds_seed") == ("lower", "seconds")
    assert classify("a.nodes_per_sec") == ("higher", "per_sec")
    assert classify("a.batch_time_speedup") == ("higher", "speedup")
    assert classify("a.enabled_overhead_ratio") == ("lower", "ratio")
    assert classify("a.failures") == ("lower", "count")
    assert classify("a.scale")[0] == "skip"
    assert classify("a.workers")[0] == "skip"
    assert classify("a.cuts_fired")[0] == "info"


def test_large_absolute_and_relative_regression_fails():
    new = copy.deepcopy(BASE)
    new["smoke"]["sweep"]["current_path_seconds"] = 55.0  # 2.75x, +35 s
    report = diff_snapshots(_flat(BASE), _flat(new))
    assert report["verdict"] == "fail"
    (finding,) = [f for f in report["findings"] if f["verdict"] == "regression"]
    assert finding["path"].endswith("current_path_seconds")


def test_small_absolute_worsening_is_noise_not_regression():
    new = copy.deepcopy(BASE)
    # 4x relative on a 15 ms timing: far past the relative threshold but
    # under the 0.25 s absolute floor — timer jitter, not a regression.
    new["smoke"]["cut_resolve"]["incremental_seconds"] = 0.060
    report = diff_snapshots(_flat(BASE), _flat(new))
    assert report["verdict"] == "pass"
    verdicts = {f["path"]: f["verdict"] for f in report["findings"]}
    assert verdicts["smoke.cut_resolve.incremental_seconds"] == "noise"


def test_small_relative_worsening_within_threshold_passes():
    new = copy.deepcopy(BASE)
    new["smoke"]["sweep"]["current_path_seconds"] = 24.0  # +20%, +4 s
    report = diff_snapshots(_flat(BASE), _flat(new))
    assert report["verdict"] == "pass"


def test_boolean_invariant_decay_is_a_regression():
    new = copy.deepcopy(BASE)
    new["smoke"]["sweep"]["objectives_match"] = False
    report = diff_snapshots(_flat(BASE), _flat(new))
    assert report["verdict"] == "fail"


def test_failures_list_growth_gates():
    new = copy.deepcopy(BASE)
    new["smoke"]["chaos"]["failures"] = ["deflate: crashed", "xfree: bad"]
    report = diff_snapshots(_flat(BASE), _flat(new))
    assert report["verdict"] == "fail"


def test_intersection_only_sections_never_gate():
    new = copy.deepcopy(BASE)
    del new["smoke"]["bb_throughput"]
    new["smoke"]["brand_new_section"] = {"whatever_seconds": 99.0}
    report = diff_snapshots(_flat(BASE), _flat(new))
    assert report["verdict"] == "pass"
    assert "smoke.bb_throughput.current_seconds" in report["base_only"]
    assert "smoke.brand_new_section.whatever_seconds" in report["new_only"]


def test_median_of_k_suppresses_one_outlier():
    runs = [_flat(copy.deepcopy(BASE)) for _ in range(3)]
    runs[1]["smoke.sweep.current_path_seconds"] = 100.0  # one bad run
    merged = median_snapshot(runs)
    assert merged["smoke.sweep.current_path_seconds"] == 20.0
    report = diff_snapshots(_flat(BASE), merged)
    assert report["verdict"] == "pass"


def test_median_of_k_bools_require_unanimity():
    runs = [_flat(copy.deepcopy(BASE)) for _ in range(3)]
    runs[2]["smoke.sweep.all_solved"] = False
    merged = median_snapshot(runs)
    assert merged["smoke.sweep.all_solved"] is False


def test_cli_gate_exit_codes(tmp_path, capsys):
    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps(BASE))
    good = tmp_path / "good.json"
    good.write_text(json.dumps(BASE))
    assert main([str(base_path), str(good), "--gate"]) == 0
    bad_doc = copy.deepcopy(BASE)
    bad_doc["smoke"]["sweep"]["current_path_seconds"] = 80.0
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(bad_doc))
    assert main([str(base_path), str(bad), "--gate"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "current_path_seconds" in out
    # Without --gate the diff reports but does not fail the process.
    assert main([str(base_path), str(bad)]) == 0


def test_cli_json_output_and_threshold_overrides(tmp_path, capsys):
    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps(BASE))
    new_doc = copy.deepcopy(BASE)
    new_doc["smoke"]["sweep"]["current_path_seconds"] = 24.0  # +20%
    new_path = tmp_path / "new.json"
    new_path.write_text(json.dumps(new_doc))
    # Default thresholds: +20% on sweep is fine.
    assert main([str(base_path), str(new_path), "--gate", "--json"]) == 0
    capsys.readouterr()
    # Tightened per-section threshold turns the same delta into a fail.
    code = main([
        str(base_path), str(new_path), "--gate", "--json",
        "--section", "sweep=0.1",
    ])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["verdict"] == "fail"
    assert report["regressions"] == 1


def test_metrics_dump_shape_diffs_too():
    base = {"counters": {"solves_total{backend=\"highs\"}": 3.0},
            "gauges": {"routine_final_gap{routine=\"x\"}": 0.0},
            "histograms": {"solve_seconds{backend=\"highs\"}": {
                "sum": 1.0, "count": 3.0,
                "buckets": {"+Inf": 3.0}}}}
    new = copy.deepcopy(base)
    new["histograms"]["solve_seconds{backend=\"highs\"}"]["sum"] = 30.0
    report = diff_snapshots(flatten(base), flatten(new))
    # histogram "sum" is untyped -> informational, never gated
    assert report["verdict"] == "pass"
    assert any(f["verdict"] == "info" for f in report["findings"])
