"""Hand-written figure samples parse and have the described structure."""

from repro.ir.cfg import CfgInfo
from repro.ir.parser import parse_function
from repro.workloads.samples import (
    fig1_code_motion_sample,
    fig4_speculation_sample,
    fig5_cyclic_sample,
    fig6_partial_ready_sample,
)


def test_fig1_is_a_diamond():
    fn = parse_function(fig1_code_motion_sample())
    cfg = CfgInfo(fn)
    assert set(fn.successors("A")) == {"B", "C"}
    assert cfg.postdominates("D", "A")


def test_fig4_load_below_branch():
    fn = parse_function(fig4_speculation_sample())
    loads = [i for i in fn.block("B").instructions if i.is_load]
    assert loads and loads[0].op.may_trap


def test_fig5_has_loop_carried_address():
    fn = parse_function(fig5_cyclic_sample())
    cfg = CfgInfo(fn)
    assert cfg.loops and cfg.loops[0].header == "LOOP"


def test_fig6_mov_on_side_path():
    fn = parse_function(fig6_partial_ready_sample())
    cfg = CfgInfo(fn)
    movs = [i for i in fn.block("B").instructions if i.mnemonic == "mov"]
    assert movs
    assert not cfg.dominates("B", "C")
    assert cfg.postdominates("C", "A")
