"""Synthetic routine generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.workloads.generator import RoutineSpec, generate_routine


def test_determinism():
    spec = RoutineSpec(name="det", seed=5, instructions=40, blocks=8, loops=1)
    from repro.ir.printer import format_function

    assert format_function(generate_routine(spec)) == format_function(
        generate_routine(spec)
    )


def test_target_sizes_roughly_met():
    spec = RoutineSpec(name="size", seed=9, instructions=100, blocks=14, loops=2)
    fn = generate_routine(spec)
    assert 60 <= fn.instruction_count <= 140
    assert 10 <= len(fn.blocks) <= 18
    cfg = CfgInfo(fn)
    assert len(cfg.loops) == 2


def test_input_speculation_planted():
    spec = RoutineSpec(
        name="specin", seed=3, instructions=60, blocks=8, loops=1, input_spec_loads=4
    )
    fn = generate_routine(spec)
    spec_loads = [i for i in fn.all_instructions() if i.op.is_spec_load]
    checks = [i for i in fn.all_instructions() if i.is_check]
    assert len(spec_loads) == 4
    assert len(checks) == len(spec_loads)


def test_loops_have_induction_updates():
    spec = RoutineSpec(name="iv", seed=11, instructions=50, blocks=9, loops=1)
    fn = generate_routine(spec)
    cfg = CfgInfo(fn)
    loop = cfg.loops[0]
    latch_instrs = [
        i for latch in loop.latches for i in fn.block(latch).instructions
    ]
    self_updates = [
        i
        for i in latch_instrs
        if set(i.regs_written()) & set(i.regs_read())
    ]
    assert self_updates, "latch must update the induction register"


@given(seed=st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_generated_functions_always_analyzable(seed):
    """Every generated routine parses, validates, and analyzes cleanly."""
    spec = RoutineSpec(
        name="prop", seed=seed, instructions=35, blocks=7, loops=1
    )
    fn = generate_routine(spec)
    fn.validate()
    cfg = CfgInfo(fn)
    live = compute_liveness(fn)
    graph = build_dependence_graph(fn, cfg, live)
    assert len(cfg.topo_order) == len(fn.blocks)
    assert fn.entry_blocks and fn.exit_blocks
    # The DDG is acyclic over forward path order by construction.
    assert graph is not None


def test_frequencies_consistent_with_loops():
    spec = RoutineSpec(name="freq", seed=21, instructions=40, blocks=9, loops=1)
    fn = generate_routine(spec)
    cfg = CfgInfo(fn)
    loop = cfg.loops[0]
    header_freq = fn.block(loop.header).freq
    entry_freq = fn.block(fn.entry_blocks[0]).freq
    assert header_freq > entry_freq  # loops multiply frequency


# -- the loop-dominated family -------------------------------------------------
def test_loop_dominated_routine_is_counted():
    from repro.ir.ddg import build_dependence_graph
    from repro.ir.liveness import compute_liveness
    from repro.sched.swp_materialize import recognize_counted_loop
    from repro.workloads.generator import (
        LoopDominatedSpec,
        generate_loop_dominated,
    )

    spec = LoopDominatedSpec(name="ld0", body_instructions=8, trips=9, seed=3)
    fn = generate_loop_dominated(spec)
    fn.validate()
    cfg = CfgInfo(fn)
    assert len(cfg.loops) == 1
    counted = recognize_counted_loop(fn, cfg.loops[0])
    assert counted is not None
    assert counted.trips == 9
    # The body analyzes cleanly for the modulo pipeline.
    build_dependence_graph(fn, cfg, compute_liveness(fn))


def test_loop_dominated_family_streams_deterministically():
    from repro.ir.printer import format_function
    from repro.workloads.generator import loop_dominated_family

    first = [
        format_function(fn) for _spec, fn in loop_dominated_family(count=4, seed=7)
    ]
    second = [
        format_function(fn) for _spec, fn in loop_dominated_family(count=4, seed=7)
    ]
    assert first == second
    assert len(first) == 4
    assert len({text.splitlines()[0] for text in first}) == 4  # distinct names
    shifted = [
        format_function(fn) for _spec, fn in loop_dominated_family(count=4, seed=8)
    ]
    assert shifted != first


def test_loop_dominated_family_scales_body():
    from repro.workloads.generator import loop_dominated_family

    small = [fn for _s, fn in loop_dominated_family(count=3, scale=1.0, seed=1)]
    large = [fn for _s, fn in loop_dominated_family(count=3, scale=2.0, seed=1)]
    for a, b in zip(small, large):
        assert sum(len(blk.instructions) for blk in b.blocks) > sum(
            len(blk.instructions) for blk in a.blocks
        )
