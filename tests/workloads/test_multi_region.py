"""The multi-region generator family (decomposition workload).

Multi-region routines chain structured segments through straight-line
corridors; they must be deterministic per spec, parseable end to end,
and carry at least ``segments - 1`` corridor joins so the decomposition
legality rule finds its articulation points.
"""

import inspect
from itertools import islice

from repro.ir.cfg import CfgInfo
from repro.ir.printer import format_function
from repro.workloads.generator import (
    MultiRegionSpec,
    generate_multi_region,
    multi_region_family,
)

SPEC = MultiRegionSpec(
    name="mr", segments=4, segment_instructions=16, segment_blocks=4, seed=3
)


def test_deterministic_per_spec():
    assert format_function(generate_multi_region(SPEC)) == format_function(
        generate_multi_region(SPEC)
    )


def test_structure_segments_and_corridors():
    fn = generate_multi_region(SPEC)
    assert len(fn.entry_blocks) == 1
    names = {block.name for block in fn.blocks}
    # One corridor per join, corridor_blocks each, at the base frequency.
    for segment in range(1, SPEC.segments):
        for position in range(SPEC.corridor_blocks):
            corridor = f"S{segment}J{position}"
            assert corridor in names
            assert fn.block(corridor).freq == SPEC.base_freq
    # Corridors are straight-line: one successor each.
    cfg = CfgInfo(fn)
    for name in names:
        if "J" in name:
            assert len(cfg.succs(name)) == 1
    # Every segment contributed blocks.
    for segment in range(SPEC.segments):
        assert any(name.startswith(f"S{segment}B") for name in names)


def test_reparse_roundtrip():
    from repro.ir.parser import parse_function

    fn = generate_multi_region(SPEC)
    reparsed = parse_function(format_function(fn))
    assert format_function(reparsed) == format_function(fn)


def test_family_streams_lazily():
    family = multi_region_family(count=1000, scale=0.5, seed=9)
    assert inspect.isgenerator(family)  # nothing built until consumed
    spec, fn = next(family)
    assert spec.name == "mr0"
    assert sum(len(b.instructions) for b in fn.blocks) > 0
    family.close()


def test_family_scale_drives_size():
    small_spec, _small = next(multi_region_family(count=1, scale=0.5, seed=2))
    large_spec, _large = next(multi_region_family(count=1, scale=2.0, seed=2))
    assert large_spec.segment_instructions > small_spec.segment_instructions


def test_family_entries_are_distinct():
    specs = [
        spec for spec, _fn in islice(multi_region_family(count=3, seed=4), 3)
    ]
    assert len({spec.name for spec in specs}) == 3
    assert len({spec.seed for spec in specs}) == 3
