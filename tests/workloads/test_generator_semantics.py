"""Generated routines are semantically well-formed programs."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir.cfg import CfgInfo
from repro.ir.interp import Interpreter, initial_registers
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.workloads.generator import RoutineSpec, generate_routine


@given(seed=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_no_undefined_reads(seed):
    """Every register use is reached only by real definitions or live-ins:
    the dominance-aware operand pools guarantee compiled-code dataflow."""
    fn = generate_routine(
        RoutineSpec(name="wf", seed=seed, instructions=30, blocks=7, loops=1)
    )
    live = compute_liveness(fn)
    for instr in fn.all_instructions():
        for regname, defs in live.reaching_uses.get(instr, {}).items():
            if regname.bank.value == "b":
                continue  # b0 is the ABI return link, implicitly live-in
            assert defs, f"{instr!r} reads {regname} with no reaching def"
            concrete = [d for d in defs if d is not LivenessInfo.ENTRY_DEF]
            if not concrete:
                assert (
                    regname in fn.live_in or regname.is_constant
                ), f"{instr!r} reads undefined {regname}"


@given(seed=st.integers(0, 10**6))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_generated_routines_terminate(seed):
    """Counted loops make every generated routine reach its return."""
    fn = generate_routine(
        RoutineSpec(name="term", seed=seed, instructions=30, blocks=7, loops=2)
    )
    result = Interpreter(max_blocks=3000).run_function(
        fn, initial_registers(fn, 0)
    )
    assert result.returned


@given(seed=st.integers(0, 10**6))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_trip_counts_match_frequency_model(seed):
    """Executed loop iterations stay within the spec's trip-count range."""
    spec = RoutineSpec(
        name="trips", seed=seed, instructions=25, blocks=7, loops=1,
        trip_count=(4, 16),
    )
    fn = generate_routine(spec)
    cfg = CfgInfo(fn)
    if not cfg.loops:
        return
    result = Interpreter(max_blocks=3000).run_function(
        fn, initial_registers(fn, 0)
    )
    header = cfg.loops[0].header
    iterations = result.block_trace.count(header)
    assert 1 <= iterations <= 16 * 2  # nested shapes may revisit
