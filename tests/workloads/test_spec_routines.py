"""Calibrated Table 1/2 routine configurations."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.workloads.spec_routines import SPEC_BY_NAME, SPEC_ROUTINES, build_spec_routine


def test_all_nine_routines_present():
    names = {s.name for s in SPEC_ROUTINES}
    assert names == {
        "longest_match",
        "deflate",
        "send_bits",
        "firstone",
        "get_heap_head",
        "add_to_heap",
        "qSort3",
        "xfree",
        "prune_match",
    }


def test_weights_match_paper():
    assert SPEC_BY_NAME["longest_match"].weight == pytest.approx(0.68)
    assert SPEC_BY_NAME["get_heap_head"].weight == pytest.approx(0.30)
    assert SPEC_BY_NAME["prune_match"].weight == pytest.approx(0.06)


@pytest.mark.parametrize("name", ["firstone", "xfree", "send_bits"])
def test_characteristics_close_to_table(name):
    spec = SPEC_BY_NAME[name]
    fn = build_spec_routine(name)
    assert abs(fn.instruction_count - spec.instructions) <= 0.35 * spec.instructions
    assert abs(len(fn.blocks) - spec.blocks) <= 3
    cfg = CfgInfo(fn)
    assert len(cfg.loops) == spec.loops
    planted = sum(1 for i in fn.all_instructions() if i.op.is_spec_load)
    assert planted == spec.input_spec_loads


def test_scaling_shrinks_routines():
    full = build_spec_routine("qSort3")
    small = build_spec_routine("qSort3", scale=0.3)
    assert small.instruction_count < full.instruction_count
    assert len(small.blocks) < len(full.blocks)


def test_no_spec_loads_in_table_matches():
    # send_bits and firstone have "Spec. in" = 0 in Table 2.
    for name in ("send_bits", "firstone"):
        fn = build_spec_routine(name)
        assert not any(i.op.is_spec_load for i in fn.all_instructions())
