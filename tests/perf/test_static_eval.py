"""Static schedule metrics."""

import pytest

from repro.bundle import bundle_schedule
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.perf.static_eval import compare_schedules, evaluate_schedule
from repro.sched.list_scheduler import ListScheduler


@pytest.fixture
def scheduled(diamond_fn):
    cfg = CfgInfo(diamond_fn)
    ddg = build_dependence_graph(diamond_fn, cfg, compute_liveness(diamond_fn))
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    return diamond_fn, schedule


def test_basic_metrics(scheduled):
    fn, schedule = scheduled
    bundles = bundle_schedule(schedule)
    metrics = evaluate_schedule(schedule, fn, bundles)
    assert metrics.instructions == fn.instruction_count
    assert metrics.weighted_length == schedule.weighted_length(fn)
    assert metrics.bundles == bundles.total_bundles
    assert 0 < metrics.weighted_ipc <= 6.0
    assert 0 < metrics.unweighted_ipc <= 6.0


def test_ipc_weighting(scheduled):
    fn, schedule = scheduled
    metrics = evaluate_schedule(schedule, fn)
    manual = sum(
        fn.block(b).freq
        * sum(1 for i in schedule.instructions_in(b) if not i.is_nop)
        for b in schedule.block_order
    ) / schedule.weighted_length(fn)
    assert metrics.weighted_ipc == pytest.approx(manual)


def test_comparison_deltas(scheduled):
    fn, schedule = scheduled
    comparison = compare_schedules(fn, schedule, schedule)
    assert comparison.static_reduction == 0.0
    assert comparison.delta_instructions == 0.0


def test_reduction_sign(scheduled):
    fn, schedule = scheduled
    from repro.sched.schedule import Schedule

    shorter = Schedule(schedule.block_order)
    for placement in schedule.placements():
        shorter.place(placement.instr, placement.block, 1)
    comparison = compare_schedules(fn, schedule, shorter)
    assert comparison.static_reduction > 0
