"""Routine/program speedup arithmetic."""

import pytest

from repro.perf.speedup import program_speedup, routine_speedup_from_program


def test_amdahl_basics():
    assert program_speedup(0.0, 2.0) == pytest.approx(1.0)
    assert program_speedup(1.0, 2.0) == pytest.approx(2.0)
    assert program_speedup(0.5, 2.0) == pytest.approx(1.0 / 0.75)


def test_roundtrip():
    for weight in (0.1, 0.3, 0.68):
        for routine in (1.1, 1.43, 2.0):
            prog = program_speedup(weight, routine)
            assert routine_speedup_from_program(weight, prog) == pytest.approx(
                routine
            )


def test_paper_longest_match_row():
    """Table 1: weight 68%, program speedup 28.97% -> routine ~1.43-1.5x.

    The paper reports 43%; the exact Amdahl inverse gives 1.49 — the
    difference is a rounding/weight-convention artifact, so the check
    brackets both.
    """
    routine = routine_speedup_from_program(0.68, 1.2897)
    assert 1.40 <= routine <= 1.55


def test_invalid_inputs():
    with pytest.raises(ValueError):
        program_speedup(0.5, 0.0)
    with pytest.raises(ValueError):
        program_speedup(1.5, 2.0)
    with pytest.raises(ValueError):
        routine_speedup_from_program(0.0, 1.2)
    with pytest.raises(ValueError):
        routine_speedup_from_program(0.1, 2.0)  # more than the weight allows
