"""Register-pressure estimation."""

import pytest

from repro.ir.parser import parse_function
from repro.perf.pressure import measure_pressure
from repro.sched.scheduler import ScheduleFeatures, optimize_function

TEXT = """
.proc pressure
.livein r32, r33
.liveout r8
.block A freq=100
  ld8 r10 = [r32] cls=heap
  add r11 = r32, r33
  xor r12 = r11, r33
  and r13 = r12, r11
  add r14 = r10, r13
  add r8 = r14, r12
  br.ret b0
.endp
"""


@pytest.fixture(scope="module")
def optimized():
    fn = parse_function(TEXT)
    return optimize_function(fn, ScheduleFeatures(time_limit=30))


def test_pressure_bounds(optimized):
    report = measure_pressure(optimized.output_schedule, optimized.fn)
    assert 1 <= report.peak <= 128
    assert report.peak_block == "A"
    assert report.weighted_average <= report.peak


def test_phase2_register_objective_not_worse():
    fn = parse_function(TEXT)
    eager = optimize_function(
        fn, ScheduleFeatures(time_limit=30, phase2_objective="stalls")
    )
    lazy = optimize_function(
        fn,
        ScheduleFeatures(time_limit=30, phase2_objective="register_pressure"),
    )
    p_eager = measure_pressure(eager.output_schedule, eager.fn)
    p_lazy = measure_pressure(lazy.output_schedule, lazy.fn)
    assert p_lazy.weighted_average <= p_eager.weighted_average + 1e-9


def test_empty_blocks_zero_pressure(optimized):
    from repro.sched.schedule import Schedule

    empty = Schedule(["A"])
    report = measure_pressure(empty, optimized.fn)
    assert report.peak == 0
