"""In-order pipeline simulator."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.perf.pipeline import PipelineSimulator, _site_hash
from repro.perf.trace import generate_trace
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import Schedule


def _baseline(fn):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return ListScheduler().schedule(fn, ddg)


def test_cycle_count_at_least_schedule_length(straight_fn):
    schedule = _baseline(straight_fn)
    trace = generate_trace(straight_fn, invocations=1)
    sim = PipelineSimulator(miss_rate=0.0)
    result = sim.run(schedule, straight_fn, trace)
    assert result.cycles >= schedule.block_length("A")
    assert result.instructions == straight_fn.instruction_count


def test_shorter_schedule_runs_faster(diamond_fn):
    schedule = _baseline(diamond_fn)
    # An (illegally) flattened schedule: everything at cycle 1.
    flat = Schedule(schedule.block_order)
    for placement in schedule.placements():
        flat.place(placement.instr, placement.block, 1)
    trace = generate_trace(diamond_fn, invocations=50)
    sim = PipelineSimulator(miss_rate=0.0)
    slow = sim.run(schedule, diamond_fn, trace)
    fast = sim.run(flat, diamond_fn, trace)
    assert fast.cycles <= slow.cycles


def test_cache_misses_add_stalls(straight_fn):
    schedule = _baseline(straight_fn)
    trace = generate_trace(straight_fn, invocations=200)
    cold = PipelineSimulator(miss_rate=0.9).run(schedule, straight_fn, trace)
    warm = PipelineSimulator(miss_rate=0.0).run(schedule, straight_fn, trace)
    assert cold.cycles > warm.cycles
    assert cold.memory_stall_cycles > warm.memory_stall_cycles


def test_collapsed_blocks_cost_nothing(diamond_fn):
    schedule = _baseline(diamond_fn)
    empty = Schedule(schedule.block_order)
    for placement in schedule.placements():
        if placement.block != "B":
            empty.place(placement.instr, placement.block, placement.cycle)
    trace = ["A", "B", "C"]
    sim = PipelineSimulator(miss_rate=0.0)
    with_b = sim.run(schedule, diamond_fn, trace)
    without_b = sim.run(empty, diamond_fn, trace)
    assert without_b.cycles < with_b.cycles


def test_miss_events_are_deterministic(straight_fn):
    schedule = _baseline(straight_fn)
    trace = generate_trace(straight_fn, invocations=100)
    sim = PipelineSimulator(miss_rate=0.25)
    first = sim.run(schedule, straight_fn, trace)
    second = sim.run(schedule, straight_fn, trace)
    assert first.cycles == second.cycles


def test_site_hash_uniformish():
    values = [_site_hash(i, 17, 1) for i in range(2000)]
    assert all(0.0 <= v < 1.0 for v in values)
    mean = sum(values) / len(values)
    assert 0.4 < mean < 0.6


def test_branch_mispredict_penalty(diamond_fn):
    schedule = _baseline(diamond_fn)
    likely = ["A", "C"] * 50
    unlikely = ["A", "B", "C"] * 50
    sim = PipelineSimulator(miss_rate=0.0)
    fast = sim.run(schedule, diamond_fn, likely)
    slow = sim.run(schedule, diamond_fn, unlikely)
    # The unlikely path pays misprediction penalties (and executes B).
    assert slow.branch_penalty_cycles > fast.branch_penalty_cycles


def test_unstalled_fraction_bounds(straight_fn):
    schedule = _baseline(straight_fn)
    trace = generate_trace(straight_fn, invocations=50)
    result = PipelineSimulator(miss_rate=0.1).run(schedule, straight_fn, trace)
    assert 0.0 < result.unstalled_fraction <= 1.0
