"""Taken-branch bubble and front-end modeling."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.machine.itanium2 import ITANIUM2
from repro.perf.pipeline import PipelineSimulator
from repro.sched.list_scheduler import ListScheduler


def _sched(fn):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return ListScheduler().schedule(fn, ddg)


def test_fallthrough_is_free(diamond_fn):
    schedule = _sched(diamond_fn)
    sim = PipelineSimulator(miss_rate=0.0)
    # A -> B is the fall-through edge in layout; A -> C is the taken edge.
    fall = sim.run(schedule, diamond_fn, ["A", "B", "C"])
    taken = sim.run(schedule, diamond_fn, ["A", "C"])
    # The taken path executes less work but pays the bubble; per-block
    # penalty bookkeeping must show it.
    assert taken.branch_penalty_cycles >= ITANIUM2.taken_branch_bubble
    assert fall.branch_penalty_cycles < taken.branch_penalty_cycles + (
        ITANIUM2.branch_misp_penalty + 1
    )


def test_bubble_charged_on_backedges(loop_fn):
    schedule = _sched(loop_fn)
    sim = PipelineSimulator(miss_rate=0.0)
    trace = ["PRE"] + ["LOOP"] * 10 + ["POST"]
    result = sim.run(schedule, loop_fn, trace)
    # Nine taken backedges, each costing at least the bubble.
    assert result.branch_penalty_cycles >= 9 * ITANIUM2.taken_branch_bubble


def test_zero_bubble_variant():
    from repro.machine.itanium2 import MachineDescription

    free = MachineDescription(taken_branch_bubble=0, branch_misp_penalty=0)
    fn = parse_function("""
.proc b0free
.livein r32
.liveout r8
.block A freq=1
  add r8 = r32, 1
  br C
.block B freq=1
  add r8 = r32, 5
.block C freq=1
  br.ret b0
.endp
""")
    schedule = _sched(fn)
    sim = PipelineSimulator(machine=free, miss_rate=0.0)
    result = sim.run(schedule, fn, ["A", "C"])
    assert result.branch_penalty_cycles == 0
