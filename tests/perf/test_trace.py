"""Profile-directed trace generation."""

import pytest

from repro.perf.trace import expected_block_counts, generate_trace


def test_trace_follows_structure(diamond_fn):
    trace = generate_trace(diamond_fn, invocations=20, seed=3)
    assert trace[0] == "A"
    counts = expected_block_counts(trace)
    assert counts["A"] == 20
    assert counts["C"] == 20
    assert counts.get("B", 0) <= 20


def test_trace_is_deterministic(diamond_fn):
    t1 = generate_trace(diamond_fn, invocations=10, seed=42)
    t2 = generate_trace(diamond_fn, invocations=10, seed=42)
    assert t1 == t2
    t3 = generate_trace(diamond_fn, invocations=10, seed=43)
    assert t1 != t3 or len(t1) == len(t3)


def test_loop_iterations_match_probability(loop_fn):
    trace = generate_trace(loop_fn, invocations=200, seed=7)
    counts = expected_block_counts(trace)
    iterations_per_visit = counts["LOOP"] / counts["PRE"]
    # Edge annotated with 0.9 self-probability -> ~10 iterations.
    assert 5 <= iterations_per_visit <= 20


def test_max_blocks_guard(loop_fn):
    trace = generate_trace(loop_fn, invocations=10**6, max_blocks=500, seed=1)
    assert len(trace) <= 500


def test_branch_probabilities_respected(diamond_fn):
    trace = generate_trace(diamond_fn, invocations=500, seed=11)
    counts = expected_block_counts(trace)
    # freq(B)=60 vs direct edge A->C: B taken with p ~ 60/160.
    fraction = counts.get("B", 0) / 500
    assert 0.2 < fraction < 0.55
