"""ScheduleStore durability and integrity contract.

Whatever happens to the files — truncation, bit rot, version drift,
injected I/O faults — a read returns either a checksum-verified entry
or ``None``; it never returns garbage and never leaves a bad entry in
place to fail again.
"""

import json
import os
import threading
import time

import pytest

from repro.serve.store import ENTRY_MAGIC, ScheduleStore
from repro.tools import faults

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64
FAMILY = "f" * 64


@pytest.fixture
def store(tmp_path):
    return ScheduleStore(tmp_path / "cache")


def test_put_get_roundtrip(store):
    payload = b"\x00\x01payload\xff"
    header = store.put(KEY_A, FAMILY, payload, {"routine": "r", "quality": "optimal"})
    assert header["magic"] == ENTRY_MAGIC
    assert header["payload_len"] == len(payload)
    got_header, got_payload = store.get(KEY_A)
    assert got_payload == payload
    assert got_header["routine"] == "r"
    # Roundtrip survives a fresh store object (no in-process state).
    fresh = ScheduleStore(store.root)
    _header, got2 = fresh.get(KEY_A)
    assert got2 == payload


def test_miss_returns_none(store):
    assert store.get(KEY_A) is None
    assert KEY_A not in store


def test_atomic_put_leaves_no_tmp_litter(store):
    store.put(KEY_A, FAMILY, b"x" * 100)
    assert os.listdir(os.path.join(store.root, "tmp")) == []


def test_corrupt_payload_quarantined(store):
    store.put(KEY_A, FAMILY, b"good payload bytes")
    store.drop_mem()
    path = store._entry_path(KEY_A)
    raw = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(raw[:-3] + b"ROT")
    assert store.get(KEY_A) is None
    assert not os.path.exists(path)  # quarantined, not left to re-fail


def test_truncated_entry_quarantined(store):
    store.put(KEY_A, FAMILY, b"a payload long enough to truncate")
    store.drop_mem()
    path = store._entry_path(KEY_A)
    raw = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(raw[: len(raw) // 2])
    assert store.get(KEY_A) is None
    assert not os.path.exists(path)


def test_version_mismatch_quarantined(store):
    store.put(KEY_A, FAMILY, b"payload")
    store.drop_mem()
    path = store._entry_path(KEY_A)
    raw = open(path, "rb").read()
    newline = raw.find(b"\n")
    header = json.loads(raw[:newline])
    header["version"] = 999
    with open(path, "wb") as handle:
        handle.write(json.dumps(header).encode() + b"\n" + raw[newline + 1:])
    assert store.get(KEY_A) is None
    assert not os.path.exists(path)


def test_injected_corruption_caught_by_checksum(store):
    store.put(KEY_A, FAMILY, b"checksummed payload")
    store.drop_mem()
    with faults.inject("serve.corrupt_entry=corrupt:1"):
        assert store.get(KEY_A) is None
    # The file was quarantined while the fault was armed; a re-put works.
    store.put(KEY_A, FAMILY, b"checksummed payload")
    assert store.get(KEY_A)[1] == b"checksummed payload"


def test_injected_store_io_raises_oserror(store):
    store.put(KEY_A, FAMILY, b"payload")
    store.drop_mem()
    with faults.inject("serve.store_io=error:1"):
        with pytest.raises(OSError):
            store.get(KEY_A)
    with faults.inject("serve.store_io=error:1"):
        with pytest.raises(OSError):
            store.put(KEY_B, FAMILY, b"other")


def test_mem_front_serves_without_disk(store):
    store.put(KEY_A, FAMILY, b"hot payload")
    os.unlink(store._entry_path(KEY_A))
    # Still served from the in-process LRU front.
    assert store.get(KEY_A)[1] == b"hot payload"
    store.drop_mem()
    assert store.get(KEY_A) is None


def test_mem_front_bounded(tmp_path):
    store = ScheduleStore(tmp_path / "c", mem_entries=2)
    for i, key in enumerate((KEY_A, KEY_B, KEY_C)):
        store.put(key, "", b"p%d" % i)
    assert len(store._mem) == 2
    assert KEY_A not in store._mem  # oldest dropped from the front...
    assert store.get(KEY_A)[1] == b"p0"  # ...but still on disk


def test_family_index_roundtrip(store):
    store.put(KEY_A, FAMILY, b"one")
    store.put(KEY_B, FAMILY, b"two")
    assert sorted(store.family_members(FAMILY)) == sorted([KEY_A, KEY_B])
    # Members whose entries vanished are filtered out.
    os.unlink(store._entry_path(KEY_A))
    assert store.family_members(FAMILY) == [KEY_B]
    assert store.family_members("0" * 64) == []


def test_gc_evicts_lru_to_budget(store):
    store.put(KEY_A, FAMILY, b"x" * 1000)
    time.sleep(0.01)
    store.put(KEY_B, FAMILY, b"y" * 1000)
    time.sleep(0.01)
    store.get(KEY_A, touch=True)  # refresh A's mtime: B is now LRU
    store.drop_mem()
    total = store.stats()["bytes"]
    evicted = store.gc(total - 1)  # must drop exactly one entry
    assert evicted == [KEY_B]
    assert store.get(KEY_A) is not None
    assert store.get(KEY_B) is None


def test_gc_sweeps_stale_tmp_files(store):
    stale = os.path.join(store.root, "tmp", "stale.123.456")
    with open(stale, "wb") as handle:
        handle.write(b"crash litter")
    old = time.time() - 7200
    os.utime(stale, (old, old))
    store.gc(10**9)
    assert not os.path.exists(stale)


def test_size_budget_enforced_on_put(tmp_path):
    store = ScheduleStore(tmp_path / "c", size_budget=1500)
    store.put(KEY_A, "", b"x" * 1000)
    time.sleep(0.01)
    store.put(KEY_B, "", b"y" * 1000)
    stats = store.stats()
    assert stats["bytes"] <= 1500
    assert stats["entries"] == 1


def test_verify_all_drops_only_bad_entries(store):
    store.put(KEY_A, FAMILY, b"good")
    store.put(KEY_B, FAMILY, b"bad soon")
    store.drop_mem()
    path = store._entry_path(KEY_B)
    raw = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(raw[:-1] + b"\x00")
    ok, dropped = store.verify_all()
    assert ok == 1
    assert dropped == [KEY_B]
    assert store.get(KEY_A) is not None


def test_stats_counts(store):
    assert store.stats() == {"entries": 0, "bytes": 0, "families": 0}
    store.put(KEY_A, FAMILY, b"12345")
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["families"] == 1
    assert stats["bytes"] > 5  # header + payload


# -- multi-replica safety (advisory locking) ----------------------------------
def test_concurrent_writers_stay_consistent(tmp_path):
    """satellite: two replica stores race put+gc on one directory; the
    entries and family index must stay verifiably clean throughout."""
    root = tmp_path / "cache"
    stores = [ScheduleStore(root), ScheduleStore(root)]
    keys = ["%064x" % i for i in range(24)]
    errors = []

    def writer(store, mine):
        try:
            for i, key in enumerate(mine):
                store.put(key, FAMILY, b"payload %4d " % i * 40)
                if i % 4 == 3:
                    store.gc(64 * 1024)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(stores[0], keys[::2])),
        threading.Thread(target=writer, args=(stores[1], keys[1::2])),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert errors == []
    fresh = ScheduleStore(root)
    ok, dropped = fresh.verify_all()
    assert dropped == []
    assert ok == fresh.stats()["entries"]
    # Every surviving family member resolves to a readable entry.
    for key in fresh.family_members(FAMILY):
        assert fresh.get(key) is not None


def test_concurrent_gc_never_drops_newest(tmp_path):
    root = tmp_path / "cache"
    stores = [ScheduleStore(root), ScheduleStore(root)]
    for i in range(6):
        stores[0].put("%064x" % i, FAMILY, b"old entry " * 100)
        time.sleep(0.01)
    newest = "f" * 63 + "e"
    stores[1].put(newest, FAMILY, b"newest entry " * 10)
    # Two replicas race eviction down to a budget that keeps roughly
    # one entry; LRU order under the gc lock must keep the newest.
    budget = 2048
    threads = [
        threading.Thread(target=s.gc, args=(budget,)) for s in stores
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    fresh = ScheduleStore(root)
    assert fresh.get(newest) is not None
    assert fresh.stats()["bytes"] <= budget
    _ok, dropped = fresh.verify_all()
    assert dropped == []


def test_concurrent_double_solve_byte_identical(tmp_path):
    """Two replicas solving the same routine at once converge on one
    cache entry and byte-identical emitted text."""
    from repro.ir.parser import parse_functions
    from repro.sched.scheduler import ScheduleFeatures
    from repro.serve.service import ScheduleService
    from repro.tools.optimize import _emit_function

    from tests.conftest import STRAIGHT_TEXT

    features = ScheduleFeatures(time_limit=20)
    out = {}

    def solve(tag):
        service = ScheduleService(
            tmp_path / "cache", default_features=features
        )
        fn = parse_functions(STRAIGHT_TEXT)[0]
        outcome = service.request(fn, features)
        out[tag] = _emit_function(outcome.result)

    threads = [
        threading.Thread(target=solve, args=(tag,)) for tag in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    assert out["a"] == out["b"]
    fresh = ScheduleStore(tmp_path / "cache")
    _ok, dropped = fresh.verify_all()
    assert dropped == []
    assert fresh.stats()["entries"] == 1
