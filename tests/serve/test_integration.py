"""Cache integration across the CLI, sweep driver and scheduler hint."""

import pytest

from repro.sched.scheduler import (
    ScheduleFeatures,
    apply_length_hint,
    optimize_function,
)
from repro.tools.optimize import main as opt_main
from repro.tools.parallel import run_routines_parallel

from tests.conftest import STRAIGHT_TEXT

FEATURES = ScheduleFeatures(time_limit=20)


# -- apply_length_hint --------------------------------------------------------
def test_length_hint_tightens_never_widens():
    lengths = {"A": 8, "B": 5}
    assert apply_length_hint(lengths, {"A": 6, "B": 9}) == {"A": 6, "B": 5}


def test_length_hint_rejects_mismatched_blocks():
    assert apply_length_hint({"A": 8}, {"A": 6, "B": 2}) is None
    assert apply_length_hint({"A": 8, "B": 5}, {"A": 6}) is None


def test_length_hint_rejects_garbage():
    assert apply_length_hint({"A": 8}, {"A": "junk"}) is None
    assert apply_length_hint({"A": 8}, "not a dict") is None
    assert apply_length_hint({"A": 8}, None) is None


def test_length_hint_floors_at_one():
    assert apply_length_hint({"A": 8}, {"A": 0}) == {"A": 1}
    assert apply_length_hint({"A": 8}, {"A": -3}) == {"A": 1}


def test_optimize_with_hint_still_verifies(straight_fn):
    baseline = optimize_function(straight_fn, FEATURES)
    achieved = {
        name: baseline.output_schedule.block_length(name)
        for name in baseline.output_schedule.block_order
    }
    hinted = optimize_function(
        straight_fn, FEATURES, length_hint=achieved
    )
    assert hinted.verification.ok
    assert hinted.weighted_length_out <= baseline.weighted_length_out + 1e-9
    assert hinted.trace.counters.get("family_hint_applied", 0) >= 1


def test_optimize_with_infeasibly_tight_hint_recovers(straight_fn):
    # A hint of all-ones is (generally) infeasible; the resize ladder
    # must recover and still produce a verified schedule.
    hint = {b.name: 1 for b in straight_fn.blocks}
    result = optimize_function(straight_fn, FEATURES, length_hint=hint)
    assert result.verification.ok


# -- tia-opt --cache ----------------------------------------------------------
def test_tia_opt_cache_flag(tmp_path, capsys):
    asm = tmp_path / "routine.tia"
    asm.write_text(STRAIGHT_TEXT)
    cache = str(tmp_path / "cache")
    rc = opt_main([str(asm), "--cache", cache, "--time-limit", "20"])
    assert rc == 0
    first = capsys.readouterr()
    assert "cache: miss" in first.err
    rc = opt_main([str(asm), "--cache", cache, "--time-limit", "20"])
    assert rc == 0
    second = capsys.readouterr()
    assert "cache: exact" in second.err
    assert first.out == second.out  # byte-identical emitted assembly


# -- parallel sweep with a shared cache ---------------------------------------
@pytest.mark.parametrize("repeat", [2])
def test_parallel_sweep_shares_cache(tmp_path, repeat):
    cache = str(tmp_path / "cache")
    features = ScheduleFeatures(time_limit=20)
    runs = [
        run_routines_parallel(
            ["xfree"],
            features=features,
            scale=0.2,
            sim_invocations=10,
            cache_dir=cache,
        )
        for _ in range(repeat)
    ]
    for outcomes in runs:
        assert all(o.ok for o in outcomes)
    # The second sweep served from cache: identical output schedules.
    tables = [
        outcomes[0].experiment.table1_row() for outcomes in runs
    ]
    assert tables[0] == tables[1]
