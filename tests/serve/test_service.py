"""ScheduleService contract: hits are byte-identical, faults degrade.

The serving invariants under test:

* an exact hit returns the *same* schedule (byte-identical emitted
  text) without re-running the solver,
* concurrent duplicate requests coalesce onto one solve,
* a family near miss seeds the cycle ranges and still verifies,
* every store failure mode — I/O errors, injected corruption — is
  absorbed as a cold solve; **a request never raises**,
* degraded (``fallback_input``) results are never cached.
"""

import threading
import time

import pytest

from repro.ir.printer import format_function, format_schedule
from repro.sched.scheduler import ScheduleFeatures
from repro.serve import service as service_mod
from repro.serve.service import ScheduleService, cached_optimize
from repro.serve.store import ScheduleStore
from repro.tools import faults
from repro.workloads.generator import RoutineSpec, generate_routine

FEATURES = ScheduleFeatures(time_limit=20)


def _emitted(result):
    return format_function(result.fn) + "\n" + format_schedule(
        result.output_schedule, result.fn
    )


@pytest.fixture
def svc(tmp_path):
    return ScheduleService(tmp_path / "cache", default_features=FEATURES)


def test_exact_hit_byte_identical(svc, straight_fn):
    cold = svc.request(straight_fn)
    assert cold.kind == "miss"
    assert cold.stored
    hit = svc.request(straight_fn)
    assert hit.kind == "exact"
    assert svc.solves == 1  # the hit never touched the solver
    assert _emitted(hit.result) == _emitted(cold.result)
    assert hit.result.quality == cold.result.quality


def test_exact_hit_across_service_instances(tmp_path, straight_fn):
    a = ScheduleService(tmp_path / "cache", default_features=FEATURES)
    cold = a.request(straight_fn)
    b = ScheduleService(tmp_path / "cache", default_features=FEATURES)
    hit = b.request(straight_fn)
    assert hit.kind == "exact"
    assert b.solves == 0
    assert _emitted(hit.result) == _emitted(cold.result)


def test_different_features_different_entry(svc, straight_fn):
    svc.request(straight_fn)
    other = svc.request(
        straight_fn, ScheduleFeatures(time_limit=20, speculation=False)
    )
    assert other.kind == "miss"
    assert svc.solves == 2


def test_coalescing_single_flight(svc, straight_fn):
    release = threading.Event()
    real_scheduler = service_mod.IlpScheduler

    class SlowScheduler(real_scheduler):
        def optimize(self, fn, length_hint=None):
            release.wait(timeout=30)
            return super().optimize(fn, length_hint=length_hint)

    outcomes = []
    lock = threading.Lock()

    def worker():
        outcome = svc.request(straight_fn)
        with lock:
            outcomes.append(outcome)

    service_mod.IlpScheduler = SlowScheduler
    try:
        threads = [threading.Thread(target=worker) for _ in range(3)]
        threads[0].start()
        # Wait for the leader to open its flight, then pile followers on.
        deadline = time.time() + 10
        while not svc._flights and time.time() < deadline:
            time.sleep(0.005)
        assert svc._flights, "leader never opened a flight"
        for t in threads[1:]:
            t.start()
        flight = next(iter(svc._flights.values()))
        while time.time() < deadline:
            waiters = getattr(flight.done, "_cond", None)
            if waiters is not None and len(waiters._waiters) >= 2:
                break
            time.sleep(0.005)
        release.set()
        for t in threads:
            t.join(timeout=60)
    finally:
        service_mod.IlpScheduler = real_scheduler
        release.set()

    assert len(outcomes) == 3
    assert svc.solves == 1
    assert sum(o.coalesced for o in outcomes) == 2
    texts = {_emitted(o.result) for o in outcomes}
    assert len(texts) == 1  # everyone got the same answer


def test_family_warm_start(svc, straight_fn):
    cold = svc.request(straight_fn)
    assert cold.kind == "miss"
    # Same structure, different solver budget: same family, new exact key.
    warm = svc.request(straight_fn, ScheduleFeatures(time_limit=25))
    assert warm.kind == "family"
    assert any("family" in note for note in warm.notes)
    assert warm.result.verification.ok
    assert (
        warm.result.weighted_length_out <= cold.result.weighted_length_out + 1e-9
    )
    # The hint made it into the scheduler trace.
    assert warm.result.trace.counters.get("family_hint_applied", 0) >= 1


def test_store_io_fault_degrades_to_cold_solve(svc, straight_fn):
    svc.request(straight_fn)
    svc.store.drop_mem()
    svc.solves = 0
    with faults.inject("serve.store_io=error"):
        outcome = svc.request(straight_fn)
    assert outcome.kind == "miss"
    assert svc.solves == 1
    assert outcome.result.verification.ok
    assert any("store" in note for note in outcome.notes)


def test_corrupt_entry_fault_degrades_to_cold_solve(svc, straight_fn):
    svc.request(straight_fn)
    svc.store.drop_mem()
    svc.solves = 0
    with faults.inject("serve.corrupt_entry=corrupt:1"):
        outcome = svc.request(straight_fn)
    assert outcome.kind == "miss"
    assert svc.solves == 1
    # The quarantined entry was re-filled by the cold solve.
    assert outcome.stored


def test_fallback_results_never_cached(tmp_path, straight_fn):
    svc = ScheduleService(
        tmp_path / "cache",
        default_features=ScheduleFeatures(time_limit=1e-6),
    )
    outcome = svc.request(straight_fn)
    assert outcome.result.quality == "fallback_input"
    assert not outcome.stored
    assert svc.store.stats()["entries"] == 0
    # And the next request solves again instead of replaying the fallback.
    again = svc.request(straight_fn)
    assert again.kind == "miss"


def test_admission_timeout_degrades_not_fails(tmp_path, straight_fn):
    svc = ScheduleService(
        tmp_path / "cache",
        default_features=ScheduleFeatures(time_limit=0.2),
        max_concurrent=1,
    )
    svc._solve_slots.acquire()  # hog the only solve slot

    box = {}

    def worker():
        box["outcome"] = svc.request(straight_fn)

    thread = threading.Thread(target=worker)
    thread.start()
    time.sleep(0.5)  # let the request overrun its budget in the queue
    svc._solve_slots.release()
    thread.join(timeout=60)
    outcome = box["outcome"]
    assert outcome.result.quality == "fallback_input"
    assert not outcome.stored


def test_revalidation_quarantines_tampered_schedule(tmp_path, straight_fn):
    svc = ScheduleService(tmp_path / "cache", default_features=FEATURES)
    cold = svc.request(straight_fn)
    assert cold.stored
    # Tamper with the cached pickle *consistently* (valid checksum, bad
    # schedule): re-store a result whose schedule lost an instruction.
    import pickle

    key = cold.key
    header, payload = svc.store.get(key)
    result = pickle.loads(payload)
    sched = result.output_schedule
    victim = next(iter(sched.placements()))
    sched.place(
        victim.instr.copy(origin=victim.instr), victim.block, victim.cycle + 1
    )
    svc.store.put(key, cold.family, pickle.dumps(result), {
        "code_version": header["code_version"],
    })
    svc.store.drop_mem()
    svc.solves = 0
    outcome = svc.request(straight_fn)
    assert outcome.kind == "miss"  # hit rejected by re-verification
    assert svc.solves == 1
    assert any("re-verification" in n or "failed" in n for n in outcome.notes)


def test_request_many_orders_and_coalesces(svc):
    fns = [
        generate_routine(
            RoutineSpec(name=f"m{i % 2}", seed=i % 2, instructions=12, blocks=3)
        )
        for i in range(4)
    ]
    outcomes = svc.request_many(fns, workers=4)
    assert [o.result.fn.name for o in outcomes] == [fn.name for fn in fns]
    # Only two distinct requests: at most two solves happened; each
    # duplicate was answered by a coalesced flight or an exact hit.
    assert svc.solves <= 2
    served_cheap = sum(
        1 for o in outcomes if o.kind == "exact" or o.coalesced
    )
    assert served_cheap >= 2


def test_cached_optimize_memoizes_service(tmp_path, straight_fn):
    cache = str(tmp_path / "cache")
    first = cached_optimize(straight_fn, FEATURES, cache_dir=cache)
    second = cached_optimize(straight_fn, FEATURES, cache_dir=cache)
    assert first.kind == "miss"
    assert second.kind == "exact"
    assert _emitted(first.result) == _emitted(second.result)


def test_version_drift_ignores_entry(svc, straight_fn, monkeypatch):
    cold = svc.request(straight_fn)
    assert cold.stored
    svc.store.drop_mem()
    monkeypatch.setattr(service_mod, "CODE_VERSION", "serve-999")
    svc.solves = 0
    outcome = svc.request(straight_fn)
    # Same key found on disk, but the entry is from another code version.
    assert outcome.kind == "miss"
    assert svc.solves == 1
    assert any("code version" in note for note in outcome.notes)
