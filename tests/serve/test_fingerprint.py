"""Fingerprint invariants: rename/order blindness, change sensitivity.

The exact fingerprint must not move under transformations the optimizer
is itself blind to (consistent virtual-register renaming, textual block
permutation) and must move for anything that can change the emitted
schedule (opcode, latency override, immediate, feature flag).  The
family fingerprint sits in between: solver-only knobs and latency/
profile detail fold together, model-shaping features do not.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.parser import parse_function
from repro.ir.registers import Register, RegisterBank
from repro.machine.itanium2 import ITANIUM2
from repro.sched.scheduler import ScheduleFeatures
from repro.serve.fingerprint import family_fingerprint, fingerprint
from repro.workloads.generator import RoutineSpec, generate_routine

FEATURES = ScheduleFeatures(time_limit=30)


# -- transformation helpers ---------------------------------------------------
def _rename_map(fn, seed):
    """A consistent per-bank permutation of every register in ``fn``."""
    rng = random.Random(seed)
    used = set()
    for block in fn.blocks:
        for instr in block.instructions:
            used.update(instr.dests)
            used.update(instr.srcs)
            if instr.pred is not None:
                used.add(instr.pred)
            if instr.mem is not None:
                used.add(instr.mem.base)
    used.update(fn.live_in)
    used.update(fn.live_out)
    mapping = {}
    for bank in RegisterBank:
        regs = sorted(
            r for r in used if r.bank is bank and not r.is_constant
        )
        if not regs:
            continue
        # Map onto fresh indexes drawn from the top of the bank, shuffled.
        pool = [
            i for i in range(bank.size - 1, 0, -1)
            if Register(bank, i) not in used
        ][: len(regs)]
        if len(pool) < len(regs):
            pytest.skip("bank too full to rename")
        rng.shuffle(pool)
        for reg_, idx in zip(regs, pool):
            mapping[reg_] = Register(bank, idx)
    return mapping


def _rename(fn, mapping):
    def m(reg_):
        if reg_ is None:
            return None
        return mapping.get(reg_, reg_)

    out = Function(
        name=fn.name,
        live_in={m(r) for r in fn.live_in},
        live_out={m(r) for r in fn.live_out},
    )
    for block in fn.blocks:
        nb = BasicBlock(name=block.name, freq=block.freq)
        for instr in block.instructions:
            mem = instr.mem
            if mem is not None:
                mem = type(mem)(
                    base=m(mem.base),
                    offset=mem.offset,
                    alias_class=mem.alias_class,
                    size=mem.size,
                )
            nb.instructions.append(
                instr.copy(
                    dests=[m(d) for d in instr.dests],
                    srcs=[m(s) for s in instr.srcs],
                    mem=mem,
                    pred=m(instr.pred),
                    origin=None,
                )
            )
        out.add_block(nb)
    for edge in fn.edges:
        out.add_edge(edge.src, edge.dst, edge.prob)
    return out


def _permute_blocks(fn, seed):
    """Same blocks and edges, different textual insertion order."""
    order = list(fn.blocks)
    rng = random.Random(seed)
    rng.shuffle(order)
    out = Function(
        name=fn.name, live_in=set(fn.live_in), live_out=set(fn.live_out)
    )
    for block in order:
        out.add_block(block)
    for edge in fn.edges:
        out.add_edge(edge.src, edge.dst, edge.prob)
    return out


def _generated(seed):
    return generate_routine(
        RoutineSpec(name="fp", seed=seed, instructions=20, blocks=5, loops=1)
    )


# -- invariance properties ----------------------------------------------------
@given(seed=st.integers(0, 10**6))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fingerprint_invariant_under_renaming(seed):
    fn = _generated(seed)
    renamed = _rename(fn, _rename_map(fn, seed + 1))
    assert fingerprint(fn, FEATURES, ITANIUM2) == fingerprint(
        renamed, FEATURES, ITANIUM2
    )
    assert family_fingerprint(fn, FEATURES, ITANIUM2) == family_fingerprint(
        renamed, FEATURES, ITANIUM2
    )


@given(seed=st.integers(0, 10**6))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fingerprint_invariant_under_block_permutation(seed):
    fn = _generated(seed)
    permuted = _permute_blocks(fn, seed + 7)
    assert fingerprint(fn, FEATURES, ITANIUM2) == fingerprint(
        permuted, FEATURES, ITANIUM2
    )


@given(seed=st.integers(0, 10**6))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fingerprint_invariant_under_both(seed):
    fn = _generated(seed)
    transformed = _permute_blocks(
        _rename(fn, _rename_map(fn, seed + 1)), seed + 2
    )
    assert fingerprint(fn, FEATURES, ITANIUM2) == fingerprint(
        transformed, FEATURES, ITANIUM2
    )


# -- sensitivity --------------------------------------------------------------
def _first_alu(fn):
    for block in fn.blocks:
        for i, instr in enumerate(block.instructions):
            if instr.mnemonic == "add":
                return block, i, instr
    pytest.skip("no add instruction in routine")


def test_one_opcode_change_moves_fingerprint(straight_fn):
    fn = straight_fn
    block, i, instr = _first_alu(fn)
    base = fingerprint(fn, FEATURES, ITANIUM2)
    base_family = family_fingerprint(fn, FEATURES, ITANIUM2)
    block.instructions[i] = instr.copy(mnemonic="sub", origin=None)
    assert fingerprint(fn, FEATURES, ITANIUM2) != base
    assert family_fingerprint(fn, FEATURES, ITANIUM2) != base_family


def test_latency_override_moves_exact_not_family(straight_fn):
    fn = straight_fn
    block, i, instr = _first_alu(fn)
    base = fingerprint(fn, FEATURES, ITANIUM2)
    base_family = family_fingerprint(fn, FEATURES, ITANIUM2)
    annotations = dict(instr.annotations, lat=7)
    block.instructions[i] = instr.copy(annotations=annotations, origin=None)
    assert fingerprint(fn, FEATURES, ITANIUM2) != base
    assert family_fingerprint(fn, FEATURES, ITANIUM2) == base_family


def test_model_feature_flag_moves_both(straight_fn):
    flipped = ScheduleFeatures(time_limit=30, speculation=False)
    assert fingerprint(straight_fn, FEATURES, ITANIUM2) != fingerprint(
        straight_fn, flipped, ITANIUM2
    )
    assert family_fingerprint(
        straight_fn, FEATURES, ITANIUM2
    ) != family_fingerprint(straight_fn, flipped, ITANIUM2)


def test_solver_knob_moves_exact_not_family(straight_fn):
    longer = ScheduleFeatures(time_limit=300)
    assert fingerprint(straight_fn, FEATURES, ITANIUM2) != fingerprint(
        straight_fn, longer, ITANIUM2
    )
    assert family_fingerprint(
        straight_fn, FEATURES, ITANIUM2
    ) == family_fingerprint(straight_fn, longer, ITANIUM2)


def test_block_frequency_moves_exact_not_family(straight_fn):
    base = fingerprint(straight_fn, FEATURES, ITANIUM2)
    base_family = family_fingerprint(straight_fn, FEATURES, ITANIUM2)
    straight_fn.blocks[0].freq *= 3.0
    assert fingerprint(straight_fn, FEATURES, ITANIUM2) != base
    assert family_fingerprint(straight_fn, FEATURES, ITANIUM2) == base_family


def test_distinct_routines_distinct_fingerprints():
    seen = set()
    for seed in range(8):
        seen.add(fingerprint(_generated(seed), FEATURES, ITANIUM2))
    assert len(seen) == 8


def test_parse_roundtrip_same_fingerprint(straight_fn):
    from repro.ir.printer import format_function

    reparsed = parse_function(format_function(straight_fn))
    assert fingerprint(straight_fn, FEATURES, ITANIUM2) == fingerprint(
        reparsed, FEATURES, ITANIUM2
    )


# -- partition fingerprints (repro.sched.decompose) ---------------------------
@given(seed=st.integers(0, 10**6))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_partition_fingerprint_invariant_under_renaming(seed):
    from repro.serve.fingerprint import partition_fingerprint

    fn = _generated(seed)
    renamed = _rename(fn, _rename_map(fn, seed + 1))
    assert partition_fingerprint(
        fn, FEATURES, ITANIUM2
    ) == partition_fingerprint(renamed, FEATURES, ITANIUM2)


def test_partition_fingerprint_distinct_from_whole(straight_fn):
    """The same bytes cached as a partition must never answer a
    whole-routine request (the payloads have different shapes)."""
    from repro.serve.fingerprint import partition_fingerprint

    assert partition_fingerprint(
        straight_fn, FEATURES, ITANIUM2
    ) != fingerprint(straight_fn, FEATURES, ITANIUM2)


# -- kind="loop" fingerprints -------------------------------------------------
def test_loop_fingerprint_distinct_from_routine_and_per_loop():
    from repro.serve.fingerprint import loop_fingerprint
    from repro.workloads.generator import (
        LoopDominatedSpec,
        generate_loop_dominated,
    )

    fn = generate_loop_dominated(LoopDominatedSpec(name="lfp", seed=4))
    routine_key = fingerprint(fn, FEATURES, ITANIUM2)
    loop_key = loop_fingerprint(fn, "LOOP", FEATURES, ITANIUM2)
    assert loop_key != routine_key
    # Stable across calls, sensitive to the loop header and the knobs.
    assert loop_key == loop_fingerprint(fn, "LOOP", FEATURES, ITANIUM2)
    assert loop_key != loop_fingerprint(fn, "LOOP2", FEATURES, ITANIUM2)
    flipped = ScheduleFeatures(time_limit=30, swp_max_stages=2)
    assert loop_key != loop_fingerprint(fn, "LOOP", flipped, ITANIUM2)
