"""Framed wire protocol: bounded, typed, versioned.

A frame either parses completely or raises a typed
``ProtocolError`` — truncation, oversize declarations, bad magic and
version drift must never surface as garbage text or unbounded reads.
"""

import socket
import struct
import threading

import pytest

from repro.serve import protocol


def _pipe():
    return socket.socketpair()


def test_frame_roundtrip():
    a, b = _pipe()
    try:
        header, payload = protocol.solve_request(
            ".proc p\n.endp\n", request_id="r1",
            deadline_ms=500, features={"time_limit": 5.0},
        )
        protocol.send_frame(a, header, payload)
        got_header, got_payload = protocol.recv_frame(b)
        assert got_header["op"] == "solve"
        assert got_header["id"] == "r1"
        assert got_header["deadline_ms"] == 500
        assert got_header["features"] == {"time_limit": 5.0}
        assert got_header["v"] == protocol.PROTOCOL_VERSION
        assert got_payload == b".proc p\n.endp\n"
    finally:
        a.close()
        b.close()


def test_empty_payload_frame():
    a, b = _pipe()
    try:
        protocol.send_frame(a, *protocol.probe_request("health", "h1"))
        header, payload = protocol.recv_frame(b)
        assert header["op"] == "health"
        assert payload == b""
    finally:
        a.close()
        b.close()


def test_clean_eof_returns_none():
    a, b = _pipe()
    a.close()
    try:
        assert protocol.recv_frame(b) is None
    finally:
        b.close()


def test_truncated_frame_raises():
    a, b = _pipe()
    try:
        raw = protocol.pack_frame({"op": "solve"}, b"payload bytes")
        a.sendall(raw[: len(raw) - 4])
        a.close()
        with pytest.raises(protocol.ProtocolError, match="truncated"):
            protocol.recv_frame(b)
    finally:
        b.close()


def test_bad_magic_raises():
    a, b = _pipe()
    try:
        a.sendall(b"HTTP" + b"\x00" * 8)
        a.close()
        with pytest.raises(protocol.ProtocolError, match="magic"):
            protocol.recv_frame(b)
    finally:
        b.close()


def test_oversize_declaration_rejected_before_read():
    a, b = _pipe()
    try:
        # Declare a payload far over the cap; recv must refuse from the
        # prefix alone without trying to buffer it.
        prefix = struct.Struct(">4sII").pack(
            protocol.MAGIC, 2, protocol.MAX_PAYLOAD_BYTES + 1
        )
        a.sendall(prefix + b"{}")
        with pytest.raises(protocol.ProtocolError, match="over cap"):
            protocol.recv_frame(b)
    finally:
        a.close()
        b.close()


def test_version_drift_rejected():
    a, b = _pipe()
    try:
        raw = protocol.pack_frame({"op": "solve", "v": 99})
        a.sendall(raw)
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.recv_frame(b)
    finally:
        a.close()
        b.close()


def test_recv_honors_socket_timeout():
    a, b = _pipe()
    try:
        b.settimeout(0.1)
        # Half a frame, then silence: the read must time out, not hang.
        a.sendall(protocol.pack_frame({"op": "solve"}, b"xy")[:9])
        with pytest.raises((TimeoutError, socket.timeout)):
            protocol.recv_frame(b)
    finally:
        a.close()
        b.close()


def test_non_wire_feature_override_rejected():
    with pytest.raises(protocol.ProtocolError, match="predication"):
        protocol.solve_request("text", features={"predication": False})


def test_features_from_wire_tightens_never_widens():
    from repro.sched.scheduler import ScheduleFeatures

    base = ScheduleFeatures(time_limit=10.0)
    tightened = protocol.features_from_wire(base, {}, deadline_budget=2.0)
    assert tightened.time_limit == 2.0
    kept = protocol.features_from_wire(base, {}, deadline_budget=60.0)
    assert kept.time_limit == 10.0  # the daemon's ceiling holds
    overridden = protocol.features_from_wire(
        base, {"backend": "bb", "time_limit": 4.0}
    )
    assert overridden.backend == "bb"
    assert overridden.time_limit == 4.0
    with pytest.raises(protocol.ProtocolError):
        protocol.features_from_wire(base, {"verify": False})


def test_large_frame_in_chunks():
    """A multi-64KiB payload reassembles across recv chunks."""
    a, b = _pipe()
    payload = b"x" * (300 * 1024)
    box = {}

    def sender():
        protocol.send_frame(a, {"op": "solve"}, payload)
        a.close()

    thread = threading.Thread(target=sender)
    thread.start()
    try:
        header, got = protocol.recv_frame(b)
        box["ok"] = got == payload
    finally:
        thread.join(5)
        b.close()
    assert box["ok"]


def test_features_from_wire_validates_backend():
    """A bad backend or roster override surfaces as a typed protocol
    error (the daemon replies with it), not a server-side ValueError."""
    from repro.sched.scheduler import ScheduleFeatures

    base = ScheduleFeatures()
    raced = protocol.features_from_wire(
        base,
        {"backend": "portfolio", "portfolio_backends": ["highs", "bb"]},
    )
    assert raced.backend == "portfolio"
    assert raced.portfolio_backends == ("highs", "bb")
    with pytest.raises(protocol.ProtocolError, match="cplex"):
        protocol.features_from_wire(base, {"backend": "cplex"})
    with pytest.raises(protocol.ProtocolError, match="runner"):
        protocol.features_from_wire(
            base,
            {"backend": "portfolio", "portfolio_backends": ["warp-drive"]},
        )
