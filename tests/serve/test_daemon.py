"""tia-serve / tia-cache CLI behaviour over a real store directory."""

import json
import os
import socket
import threading

import pytest

from repro.serve import protocol
from repro.serve.client import FleetClient
from repro.serve.daemon import cache_main, serve_main
from repro.serve.store import ScheduleStore

from tests.conftest import STRAIGHT_TEXT


@pytest.fixture
def tia_file(tmp_path):
    path = tmp_path / "routine.tia"
    path.write_text(STRAIGHT_TEXT)
    return str(path)


def _cache_dir(tmp_path):
    return str(tmp_path / "cache")


def test_serve_batch_rounds_hit_cache(tmp_path, tia_file, capsys):
    cache = _cache_dir(tmp_path)
    stats_path = str(tmp_path / "stats.json")
    out_path = str(tmp_path / "out.tia")
    rc = serve_main([
        tia_file, "--cache", cache, "--rounds", "2",
        "--time-limit", "20", "--stats-out", stats_path, "-o", out_path,
    ])
    assert rc == 0
    stats = json.loads(open(stats_path).read())
    assert stats["requests"] == 2
    assert stats["hits"]["miss"] == 1
    assert stats["hits"]["exact"] == 1
    assert stats["hit_rate"] == 0.5
    assert stats["store"]["entries"] == 1
    assert "straight" in open(out_path).read()


def test_serve_batch_requires_inputs(tmp_path):
    with pytest.raises(SystemExit):
        serve_main(["--cache", _cache_dir(tmp_path)])


def _wait_for_socket(sock_path, tries=50):
    while not os.path.exists(sock_path) and tries:
        threading.Event().wait(0.1)
        tries -= 1
    assert os.path.exists(sock_path), "socket never bound"


def test_serve_socket_roundtrip(tmp_path, capsys):
    """serve_main --listen speaks the framed protocol end to end."""
    cache = _cache_dir(tmp_path)
    sock_path = str(tmp_path / "serve.sock")
    box = {}

    def server():
        box["rc"] = serve_main([
            "--cache", cache, "--listen", sock_path, "--workers", "1",
            "--max-requests", "2", "--time-limit", "20",
        ])

    thread = threading.Thread(target=server)
    thread.start()
    try:
        _wait_for_socket(sock_path)
        client = FleetClient([sock_path])
        replies = [
            client.solve(STRAIGHT_TEXT, deadline_ms=120000)
            for _ in range(2)
        ]
    finally:
        thread.join(timeout=120)
    assert box["rc"] == 0
    assert all(".proc straight" in reply.text for reply in replies)
    assert replies[0].results[0]["kind"] == "miss"
    assert replies[1].results[0]["kind"] == "exact"
    # Second connection was served from cache: byte-identical reply.
    assert replies[0].text == replies[1].text


def test_serve_socket_bad_request_does_not_kill_loop(tmp_path):
    cache = _cache_dir(tmp_path)
    sock_path = str(tmp_path / "serve.sock")
    box = {}

    def server():
        box["rc"] = serve_main([
            "--cache", cache, "--listen", sock_path, "--workers", "1",
            "--max-requests", "1", "--time-limit", "20",
        ])

    thread = threading.Thread(target=server)
    thread.start()
    try:
        _wait_for_socket(sock_path)

        def roundtrip(text):
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(120)
            conn.connect(sock_path)
            try:
                protocol.send_frame(conn, *protocol.solve_request(text))
                header, payload = protocol.recv_frame(conn)
            finally:
                conn.close()
            return header, payload

        bad, _ = roundtrip("this is not TIA assembly {{{")
        good, good_payload = roundtrip(STRAIGHT_TEXT)
    finally:
        thread.join(timeout=120)
    assert box["rc"] == 0
    assert bad["status"] == "error"
    assert good["status"] == "ok"
    assert ".proc straight" in good_payload.decode()


def test_cache_warm_stats_verify_gc(tmp_path, tia_file, capsys):
    cache = _cache_dir(tmp_path)
    rc = cache_main(["warm", cache, tia_file, "--time-limit", "20"])
    assert rc == 0
    warm_report = json.loads(capsys.readouterr().out)
    assert warm_report["store"]["entries"] == 1

    rc = cache_main(["stats", cache, "--json"])
    assert rc == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 1
    assert stats["families"] == 1

    rc = cache_main(["ls", cache])
    assert rc == 0
    assert "straight" in capsys.readouterr().out

    rc = cache_main(["verify", cache])
    assert rc == 0
    assert "1 entries ok, 0 corrupt" in capsys.readouterr().out

    rc = cache_main(["gc", cache, "--budget", "0"])
    assert rc == 0
    assert "evicted 1 entry" in capsys.readouterr().out
    assert ScheduleStore(cache).stats()["entries"] == 0


def test_cache_verify_flags_corruption(tmp_path, tia_file, capsys):
    cache = _cache_dir(tmp_path)
    cache_main(["warm", cache, tia_file, "--time-limit", "20"])
    capsys.readouterr()
    store = ScheduleStore(cache)
    (key, path, _size, _mtime), = store.entries()
    raw = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(raw[:-1] + b"\x00")
    rc = cache_main(["verify", cache])
    assert rc == 1
    assert "1 corrupt dropped" in capsys.readouterr().out
    assert store.stats()["entries"] == 0
