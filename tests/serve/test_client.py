"""FleetClient contract: retry, backoff, busy hints, ordered failover.

The client's one promise: **as long as any replica is healthy, a
request succeeds** — and when none is, it fails with a typed
:class:`ClientError` carrying the per-replica trail, within the
caller's deadline.
"""

import random
import socket
import threading
import time

import pytest

from repro.sched.scheduler import ScheduleFeatures
from repro.serve.client import ClientError, FleetClient, RetryPolicy
from repro.serve.fleet import FleetDaemon
from repro.serve.service import ScheduleService
from repro.tools import faults

from tests.conftest import STRAIGHT_TEXT

FEATURES = ScheduleFeatures(time_limit=20)


def _start(tmp_path, name, **kwargs):
    service = ScheduleService(
        tmp_path / "cache", default_features=FEATURES
    )
    daemon = FleetDaemon(service, str(tmp_path / name), **kwargs)
    box = {}

    def target():
        box["counters"] = daemon.serve_forever()

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert daemon.wait_ready(10)
    return daemon, thread, box


def _client(paths, rounds=4):
    policy = RetryPolicy(
        max_rounds=rounds, base_delay=0.01, max_delay=0.1,
        connect_timeout=1.0, read_timeout=60.0,
    )
    return FleetClient(paths, policy=policy, rng=random.Random(7))


def test_failover_to_second_replica(tmp_path):
    daemon, thread, _ = _start(tmp_path, "b.sock", workers=1, max_requests=1)
    client = _client([str(tmp_path / "dead.sock"), daemon.path])
    reply = client.solve(STRAIGHT_TEXT, deadline_ms=60000)
    thread.join(30)
    assert reply.results[0]["routine"] == "straight"
    assert reply.replica == daemon.path
    assert client.stats.connect_failures >= 1
    assert client.stats.failovers >= 1


def test_busy_replica_fails_over_and_succeeds(tmp_path):
    """An overloaded primary sheds; the secondary serves — the request
    succeeds and the client records the busy encounter."""
    shedding, shed_thread, _ = _start(
        tmp_path, "shed.sock", workers=1, queue_capacity=1,
        shed_watermark=1, io_timeout=1.0, drain_budget=0.5,
    )
    serving, serve_thread, _ = _start(
        tmp_path, "serve.sock", workers=1, max_requests=1,
    )
    # Wedge the primary: one silent connection holds its only worker,
    # a second fills the queue to the watermark.
    stalled = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    stalled.connect(shedding.path)
    time.sleep(0.2)
    queued = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    queued.connect(shedding.path)
    time.sleep(0.1)
    try:
        client = _client([shedding.path, serving.path])
        reply = client.solve(STRAIGHT_TEXT, deadline_ms=60000)
    finally:
        stalled.close()
        queued.close()
    assert reply.results[0]["kind"] == "miss"
    assert reply.replica == serving.path
    assert client.stats.busy >= 1
    shedding.initiate_drain("test")
    shed_thread.join(30)
    serve_thread.join(30)


def test_busy_then_retry_same_replica(tmp_path):
    """A transient shed (one forced busy) is ridden out by backoff."""
    daemon, thread, box = _start(tmp_path, "a.sock", workers=1, max_requests=1)
    with faults.inject("serve.queue=error:1"):
        client = _client([daemon.path])
        reply = client.solve(STRAIGHT_TEXT, deadline_ms=60000)
    thread.join(30)
    assert reply.results[0]["routine"] == "straight"
    assert client.stats.busy == 1
    assert client.stats.attempts >= 2
    assert box["counters"]["shed"] == 1


def test_all_dead_raises_client_error_with_trail(tmp_path):
    client = _client(
        [str(tmp_path / "x.sock"), str(tmp_path / "y.sock")], rounds=2
    )
    with pytest.raises(ClientError) as excinfo:
        client.solve(STRAIGHT_TEXT, deadline_ms=2000)
    message = str(excinfo.value)
    assert "x.sock" in message or "y.sock" in message


def test_deadline_bounds_total_retry_time(tmp_path):
    import time

    client = FleetClient(
        [str(tmp_path / "dead.sock")],
        policy=RetryPolicy(
            max_rounds=50, base_delay=0.2, max_delay=2.0,
            connect_timeout=0.5, read_timeout=1.0,
        ),
        rng=random.Random(3),
    )
    started = time.monotonic()
    with pytest.raises(ClientError, match="deadline"):
        client.solve(STRAIGHT_TEXT, deadline_ms=500)
    assert time.monotonic() - started < 5.0


def test_backoff_delays_are_capped_and_jittered():
    policy = RetryPolicy(base_delay=0.05, max_delay=0.4)
    rng = random.Random(11)
    delays = [policy.delay_for_round(r, rng) for r in range(8)]
    # Jitter keeps delays in (0.5, 1.5) x the capped exponential value.
    assert all(d <= 0.4 * 1.5 for d in delays)
    assert delays[0] < delays[-1] * 4  # growth is capped, not unbounded
    # Deterministic under a seeded RNG (benchmarks rely on this).
    again = [
        policy.delay_for_round(r, random.Random(11)) for r in range(1)
    ]
    assert again[0] == policy.delay_for_round(0, random.Random(11))


def test_health_probe(tmp_path):
    daemon, thread, _ = _start(tmp_path, "h.sock", workers=1)
    client = _client([daemon.path])
    health = client.health()
    assert health["ok"] and health["status"] == "health"
    stats = client.fleet_stats()
    assert stats[daemon.path]["status"] == "stats"
    daemon.initiate_drain("test")
    thread.join(30)


def test_client_cli_roundtrip(tmp_path, capsys):
    from repro.serve.client import client_main

    daemon, thread, _ = _start(tmp_path, "cli.sock", workers=1, max_requests=1)
    tia = tmp_path / "routine.tia"
    tia.write_text(STRAIGHT_TEXT)
    out = tmp_path / "out.tia"
    rc = client_main([
        str(tia), "--socket", str(tmp_path / "gone.sock"),
        "--socket", daemon.path, "--seed", "5",
        "--deadline-ms", "60000", "-o", str(out), "--json",
    ])
    thread.join(30)
    assert rc == 0
    assert ".proc straight" in out.read_text()
    captured = capsys.readouterr()
    assert '"served": 1' in captured.out


def test_client_cli_requires_socket(tmp_path):
    from repro.serve.client import client_main

    with pytest.raises(SystemExit):
        client_main([str(tmp_path / "x.tia")])
