"""FleetDaemon robustness contract: shed, drain, timeouts, probes.

The daemon must survive everything a fleet throws at it — silent
clients, overload, injected accept/queue/drain faults, SIGTERM mid
load — while keeping three promises: completed requests are correct
(byte-identical on exact hits), rejected requests get *typed* replies
(busy/error, never silence or garbage), and shutdown is clean (rc 0,
store intact).
"""

import os
import socket
import threading
import time

import pytest

from repro.sched.scheduler import ScheduleFeatures
from repro.serve import protocol
from repro.serve.fleet import DaemonError, FleetDaemon
from repro.serve.service import ScheduleService
from repro.tools import faults

from tests.conftest import STRAIGHT_TEXT

FEATURES = ScheduleFeatures(time_limit=20)


def _daemon(tmp_path, **kwargs):
    service = ScheduleService(
        tmp_path / "cache", default_features=FEATURES
    )
    return FleetDaemon(service, str(tmp_path / "serve.sock"), **kwargs)


def _run(daemon):
    """Start serve_forever in a thread; returns (thread, box)."""
    box = {}

    def target():
        box["counters"] = daemon.serve_forever()

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert daemon.wait_ready(10), "daemon never bound its socket"
    return thread, box


def _connect(path, timeout=10.0):
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    conn.connect(path)
    return conn


def _roundtrip(path, header, payload=b"", timeout=60.0):
    conn = _connect(path, timeout)
    try:
        try:
            protocol.send_frame(conn, header, payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # shed before reading: the busy reply is buffered
        return protocol.recv_frame(conn)
    finally:
        conn.close()


def _solve(path, text=STRAIGHT_TEXT, **kwargs):
    header, payload = protocol.solve_request(text, **kwargs)
    return _roundtrip(path, header, payload)


def test_solve_roundtrip_and_exact_hit(tmp_path):
    daemon = _daemon(tmp_path, workers=2, max_requests=2)
    thread, box = _run(daemon)
    h1, p1 = _solve(daemon.path, request_id="a")
    h2, p2 = _solve(daemon.path, request_id="b")
    thread.join(30)
    assert h1["status"] == "ok" and h2["status"] == "ok"
    assert h1["id"] == "a"
    assert h1["results"][0]["kind"] == "miss"
    assert h2["results"][0]["kind"] == "exact"
    assert p1 == p2  # exact hit replays byte-identically
    assert box["counters"]["completed"] == 2
    assert box["counters"]["rejected"] == 0


def test_health_and_stats_probes(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    thread, box = _run(daemon)
    health, _ = _roundtrip(daemon.path, *protocol.probe_request("health"))
    stats, _ = _roundtrip(daemon.path, *protocol.probe_request("stats"))
    _solve(daemon.path)  # let max_requests end the loop
    thread.join(30)
    assert health["status"] == "health" and health["ok"]
    assert health["queue_capacity"] == daemon.queue_capacity
    assert health["workers"] == 1
    assert stats["status"] == "stats"
    assert "entries" in stats["store"]
    # Probes do not count toward max_requests.
    assert box["counters"]["completed"] == 1
    assert box["counters"]["probes"] == 2


def test_bad_payload_gets_typed_error_and_does_not_count(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    thread, box = _run(daemon)
    bad, _ = _solve(daemon.path, text="this is not TIA {{{")
    good, _ = _solve(daemon.path)
    thread.join(30)
    assert bad["status"] == "error"
    assert good["status"] == "ok"
    # The errored request did NOT consume the max-requests budget.
    assert box["counters"]["completed"] == 1
    assert box["counters"]["rejected"] >= 1


def test_garbage_bytes_get_protocol_error(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    thread, box = _run(daemon)
    conn = _connect(daemon.path)
    try:
        conn.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
        reply = protocol.recv_frame(conn)
    finally:
        conn.close()
    _solve(daemon.path)
    thread.join(30)
    assert reply[0]["status"] == "error"
    assert box["counters"]["completed"] == 1


def test_stalled_client_cannot_wedge_a_worker(tmp_path):
    """satellite: a silent connection is bounded by io_timeout."""
    daemon = _daemon(tmp_path, workers=1, io_timeout=0.5, max_requests=1)
    thread, box = _run(daemon)
    stalled = _connect(daemon.path)
    started = time.monotonic()
    try:
        # Send nothing. The worker must give up within ~io_timeout and
        # come back for real work.
        reply = protocol.recv_frame(stalled)  # daemon sends timeout error
        waited = time.monotonic() - started
        assert reply is None or reply[0]["status"] == "error"
        assert waited < 10.0
        good, _ = _solve(daemon.path)
        assert good["status"] == "ok"
    finally:
        stalled.close()
    thread.join(30)
    assert box["counters"]["completed"] == 1
    assert box["counters"]["rejected"] >= 1


def test_overload_sheds_with_busy_and_retry_hint(tmp_path):
    daemon = _daemon(
        tmp_path, workers=1, queue_capacity=1, shed_watermark=1,
        io_timeout=1.0, max_requests=1,
    )
    thread, box = _run(daemon)
    # Occupy the single worker with a stalled connection...
    stalled = _connect(daemon.path)
    time.sleep(0.2)  # let the worker pick it up
    # ...queue one more (depth 1)...
    queued = _connect(daemon.path)
    time.sleep(0.1)
    # ...and the next admission must shed: depth >= watermark.
    shed_reply, _ = _roundtrip(
        daemon.path, *protocol.solve_request(STRAIGHT_TEXT)
    )
    assert shed_reply["status"] == "busy"
    assert shed_reply["reason"] == "overload"
    assert shed_reply["retry_after_ms"] >= 25
    # The queued connection is eventually served normally.
    try:
        protocol.send_frame(
            queued, *protocol.solve_request(STRAIGHT_TEXT)
        )
        queued.settimeout(60.0)
        good = protocol.recv_frame(queued)
        assert good[0]["status"] == "ok"
    finally:
        queued.close()
        stalled.close()
    thread.join(30)
    assert box["counters"]["shed"] == 1
    assert box["counters"]["completed"] == 1


def test_injected_queue_fault_forces_shed(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    with faults.inject("serve.queue=error:1"):
        thread, box = _run(daemon)
        shed, _ = _solve(daemon.path)
        good, _ = _solve(daemon.path)
        thread.join(30)
    assert shed["status"] == "busy"
    assert shed["reason"] == "injected"
    assert good["status"] == "ok"
    assert box["counters"]["shed"] == 1


def test_injected_accept_fault_does_not_kill_loop(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    with faults.inject("serve.accept=error:1"):
        thread, box = _run(daemon)
        first, _ = _solve(daemon.path)
        second, _ = _solve(daemon.path)
        thread.join(30)
    assert first["status"] == "error"
    assert second["status"] == "ok"
    assert box["counters"]["accept_errors"] == 1
    assert box["counters"]["completed"] == 1


def test_graceful_drain_flushes_queued_with_busy(tmp_path):
    daemon = _daemon(
        tmp_path, workers=1, queue_capacity=2, io_timeout=1.0,
        drain_budget=0.5,
    )
    thread, box = _run(daemon)
    # Wedge the worker so queued work cannot start, then queue one.
    stalled = _connect(daemon.path)
    time.sleep(0.2)
    queued = _connect(daemon.path)
    protocol.send_frame(queued, *protocol.solve_request(STRAIGHT_TEXT))
    time.sleep(0.1)
    daemon.initiate_drain("test")
    thread.join(30)
    assert not thread.is_alive()
    # The queued connection got a typed draining reply, not silence.
    queued.settimeout(5.0)
    reply = protocol.recv_frame(queued)
    queued.close()
    stalled.close()
    assert reply is not None
    status = reply[0]["status"]
    assert status in ("busy", "error")
    if status == "busy":
        assert reply[0]["reason"] == "draining"
    assert box["counters"]["drained"] >= (1 if status == "busy" else 0)
    # The socket path is gone: new clients fail over immediately.
    assert not os.path.exists(daemon.path)


def test_drain_fault_still_exits_cleanly(tmp_path):
    daemon = _daemon(tmp_path, workers=1, drain_budget=1.0)
    with faults.inject("serve.drain=error:1"):
        thread, box = _run(daemon)
        reply, _ = _solve(daemon.path)
        daemon.initiate_drain("test")
        thread.join(30)
    assert not thread.is_alive()
    assert reply["status"] == "ok"
    assert box["counters"]["completed"] == 1


def test_deadline_threads_into_fallback_ladder(tmp_path):
    """An expired deadline degrades the solve; it never raises."""
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    thread, _box = _run(daemon)
    header, _ = _solve(daemon.path, deadline_ms=1)
    thread.join(30)
    assert header["status"] == "ok"
    # With a ~0 budget the optimizer lands on a degraded tier; any
    # tier is acceptable, raising is not.
    assert header["results"][0]["quality"] in (
        "optimal", "incumbent", "phase1", "fallback_input"
    )


def test_stale_socket_taken_over(tmp_path):
    path = str(tmp_path / "serve.sock")
    # A dead listener's socket file (bound, closed, never unlinked).
    dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    dead.bind(path)
    dead.listen(1)
    dead.close()
    assert os.path.exists(path)
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    thread, box = _run(daemon)
    reply, _ = _solve(daemon.path)
    thread.join(30)
    assert reply["status"] == "ok"
    assert box["counters"]["completed"] == 1


def test_live_socket_refused(tmp_path):
    first = _daemon(tmp_path, workers=1)
    thread, _box = _run(first)
    second = _daemon(tmp_path, workers=1)
    with pytest.raises(DaemonError, match="live listener"):
        second.bind()
    first.initiate_drain("test")
    thread.join(30)
    assert not thread.is_alive()
