"""Fleet journaling contract: one attributable record per request exit.

Every way a request can leave the daemon — ok, shed (busy), protocol
error, drained, injected accept fault, probe — must append exactly one
schema-valid journal record carrying whatever identity the daemon could
recover (request id, trace id), and ``tia-telemetry`` must be able to
reconstruct the daemon's own exit counters from the journal alone.
Journal faults must never leak into the request path.
"""

import socket
import threading
import time

from repro.obs import telemetry
from repro.obs.journal import read_records, validate_record
from repro.sched.scheduler import ScheduleFeatures
from repro.serve import protocol
from repro.serve.fleet import FleetDaemon
from repro.serve.service import ScheduleService
from repro.tools import faults

from tests.conftest import STRAIGHT_TEXT

FEATURES = ScheduleFeatures(time_limit=20)


def _daemon(tmp_path, **kwargs):
    service = ScheduleService(
        tmp_path / "cache", default_features=FEATURES
    )
    kwargs.setdefault("journal", str(tmp_path / "journal"))
    return FleetDaemon(service, str(tmp_path / "serve.sock"), **kwargs)


def _run(daemon):
    box = {}

    def target():
        box["counters"] = daemon.serve_forever()

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert daemon.wait_ready(10), "daemon never bound its socket"
    return thread, box


def _connect(path, timeout=10.0):
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    conn.connect(path)
    return conn


def _roundtrip(path, header, payload=b"", timeout=60.0):
    conn = _connect(path, timeout)
    try:
        try:
            protocol.send_frame(conn, header, payload)
        except (BrokenPipeError, ConnectionResetError):
            pass
        return protocol.recv_frame(conn)
    finally:
        conn.close()


def _requests(root, outcome=None):
    records = list(read_records(root, kinds=("request",)))
    if outcome is not None:
        records = [r for r in records if r["outcome"] == outcome]
    return records


def test_ok_and_probe_paths_journal_with_trace(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    thread, box = _run(daemon)
    trace = protocol.trace_header("ab" * 16, parent_ref="77.3")
    probe_header, _ = _roundtrip(
        daemon.path, *protocol.probe_request("health", "h1", trace=trace)
    )
    reply, _ = _roundtrip(
        daemon.path,
        *protocol.solve_request(STRAIGHT_TEXT, request_id="r1", trace=trace),
    )
    thread.join(30)
    assert reply["status"] == "ok"
    # Replies echo the adopted trace id end to end.
    assert reply["trace_id"] == "ab" * 16
    assert probe_header["trace_id"] == "ab" * 16

    root = tmp_path / "journal"
    records = _requests(root)
    assert [r["outcome"] for r in records] == ["probe", "ok"]
    assert all(validate_record(r) == [] for r in records)
    probe, ok = records
    assert probe["request_id"] == "h1"
    assert probe["trace_id"] == "ab" * 16
    assert ok["request_id"] == "r1"
    assert ok["trace_id"] == "ab" * 16
    assert ok["family"]
    assert ok["routines"][0]["kind"] == "miss"
    assert ok["cache_kinds"] == {"miss": 1}
    assert ok["features"]["time_limit"] == 20
    for key in ("queue_wait", "solve", "total"):
        assert ok["timings"][key] >= 0.0
    assert ok["replica"] == daemon.replica


def test_error_path_journals_once_with_ids(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    thread, box = _run(daemon)
    trace = protocol.trace_header("cd" * 16)
    header, payload = protocol.solve_request(
        "", request_id="bad-1", trace=trace
    )
    reply, _ = _roundtrip(daemon.path, header, payload)
    good, _ = _roundtrip(
        daemon.path, *protocol.solve_request(STRAIGHT_TEXT)
    )
    thread.join(30)
    assert reply["status"] == "error"
    assert reply["id"] == "bad-1"
    assert reply["trace_id"] == "cd" * 16
    assert good["status"] == "ok"

    errors = _requests(tmp_path / "journal", "error")
    assert len(errors) == 1
    assert errors[0]["request_id"] == "bad-1"
    assert errors[0]["trace_id"] == "cd" * 16
    assert "no routines" in errors[0]["error"]


def test_shed_path_journals_busy_with_peeked_ids(tmp_path):
    daemon = _daemon(
        tmp_path, workers=1, queue_capacity=1, shed_watermark=1,
        io_timeout=1.0, max_requests=1,
    )
    thread, box = _run(daemon)
    stalled = _connect(daemon.path)
    time.sleep(0.2)
    queued = _connect(daemon.path)
    time.sleep(0.1)
    trace = protocol.trace_header("ef" * 16)
    shed_reply, _ = _roundtrip(
        daemon.path,
        *protocol.solve_request(
            STRAIGHT_TEXT, request_id="shed-me", trace=trace
        ),
    )
    assert shed_reply["status"] == "busy"
    assert shed_reply["reason"] == "overload"
    # The daemon peeked the buffered frame: identity survives the shed.
    assert shed_reply["id"] == "shed-me"
    assert shed_reply["trace_id"] == "ef" * 16
    try:
        protocol.send_frame(queued, *protocol.solve_request(STRAIGHT_TEXT))
        queued.settimeout(60.0)
        assert protocol.recv_frame(queued)[0]["status"] == "ok"
    finally:
        queued.close()
        stalled.close()
    thread.join(30)

    busy = _requests(tmp_path / "journal", "busy")
    assert len(busy) == 1
    assert busy[0]["shed_reason"] == "overload"
    assert busy[0]["request_id"] == "shed-me"
    assert busy[0]["trace_id"] == "ef" * 16


def test_accept_fault_path_journals_fault(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=1)
    with faults.inject("serve.accept=error:1"):
        thread, box = _run(daemon)
        first, _ = _roundtrip(
            daemon.path,
            *protocol.solve_request(STRAIGHT_TEXT, request_id="f1"),
        )
        good, _ = _roundtrip(
            daemon.path, *protocol.solve_request(STRAIGHT_TEXT)
        )
        thread.join(30)
    assert first["status"] == "error"
    assert good["status"] == "ok"
    fault_records = _requests(tmp_path / "journal", "fault")
    assert len(fault_records) == 1
    assert fault_records[0]["fault"] == "serve.accept"


def test_drain_path_journals_drained_and_summary(tmp_path):
    daemon = _daemon(
        tmp_path, workers=1, queue_capacity=2, io_timeout=1.0,
        drain_budget=0.5,
    )
    thread, box = _run(daemon)
    stalled = _connect(daemon.path)
    time.sleep(0.2)
    queued = _connect(daemon.path)
    protocol.send_frame(
        queued, *protocol.solve_request(STRAIGHT_TEXT, request_id="q1")
    )
    time.sleep(0.1)
    daemon.initiate_drain("test")
    thread.join(30)
    assert not thread.is_alive()
    queued.close()
    stalled.close()

    root = tmp_path / "journal"
    if box["counters"]["drained"]:
        drained = _requests(root, "drained")
        assert len(drained) == box["counters"]["drained"]
        assert all(r["shed_reason"] == "draining" for r in drained)
    summaries = list(read_records(root, kinds=("portfolio_summary",)))
    assert len(summaries) == 1
    assert summaries[0]["drain_reason"] == "test"
    assert summaries[0]["counters"] == box["counters"]
    assert summaries[0]["write_errors"] == 0


def test_rollup_reconstructs_daemon_counters(tmp_path):
    daemon = _daemon(tmp_path, workers=2, max_requests=2)
    thread, box = _run(daemon)
    _roundtrip(daemon.path, *protocol.probe_request("stats"))
    _roundtrip(daemon.path, *protocol.solve_request(STRAIGHT_TEXT))
    _roundtrip(daemon.path, *protocol.solve_request("", request_id="bad"))
    _roundtrip(daemon.path, *protocol.solve_request(STRAIGHT_TEXT))
    thread.join(30)
    assert box["counters"]["completed"] == 2
    assert box["counters"]["rejected"] == 1

    rollup = telemetry.journal_rollup(tmp_path / "journal")
    # The acceptance invariant: journal alone reproduces the daemon's
    # own exit counters, and matches what the replica reported at drain.
    assert rollup["counters"] == box["counters"]
    assert rollup["reported_counters"] == box["counters"]
    assert rollup["cache_kinds"] == {"miss": 1, "exact": 1}
    assert list(rollup["replicas"]) == [daemon.replica]


def test_journal_fault_never_breaks_requests(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=2)
    with faults.inject("obs.journal=error:1"):
        thread, box = _run(daemon)
        first, _ = _roundtrip(
            daemon.path, *protocol.solve_request(STRAIGHT_TEXT)
        )
        second, _ = _roundtrip(
            daemon.path, *protocol.solve_request(STRAIGHT_TEXT)
        )
        thread.join(30)
    # The journal failure is invisible to clients...
    assert first["status"] == "ok"
    assert second["status"] == "ok"
    assert box["counters"]["completed"] == 2
    # ...but accounted for at drain, and surviving shards stay valid.
    summaries = list(
        read_records(tmp_path / "journal", kinds=("portfolio_summary",))
    )
    assert summaries[0]["write_errors"] == 1
    assert len(_requests(tmp_path / "journal", "ok")) == 1
    rollup = telemetry.journal_rollup(tmp_path / "journal")
    assert rollup["write_errors"] == 1


def test_no_journal_configured_is_a_noop(tmp_path):
    daemon = _daemon(tmp_path, workers=1, max_requests=1, journal=None)
    thread, box = _run(daemon)
    reply, _ = _roundtrip(
        daemon.path, *protocol.solve_request(STRAIGHT_TEXT)
    )
    thread.join(30)
    assert reply["status"] == "ok"
    assert not (tmp_path / "journal").exists()
