"""Solve telemetry, cut attribution and paper-metric analytics."""

import pickle

import pytest

from repro.ilp import BranchBoundSolver, Model, SolveStatus
from repro.ir.parser import parse_function
from repro.obs import insight
from repro.sched.scheduler import ScheduleFeatures, optimize_function

SMALL = """
.proc tiny
.livein r32, r33
.liveout r8
.block A freq=10
  add r8 = r32, r33
  br.ret b0
.endp
"""

# Sec. 4.2 trigger (two F-unit ops + movl): fires one bundling cut.
CUT_TRIGGER = """
.proc fbound
.livein r32, f5, f6, f8, f9
.liveout r8, f4, f7
.block A freq=100
  fma f4 = f5, f6
  fma f7 = f8, f9
  movl r10 = 99999
  add r8 = r10, r32
  br.ret b0
.endp
"""


def _solve():
    model = Model("m")
    a, b = model.add_binary("a"), model.add_binary("b")
    model.add_constraint(a + b <= 1)
    model.set_objective(-(2 * a + b))
    return BranchBoundSolver().solve(model)


def test_solve_telemetry_is_plain_picklable_data():
    solution = _solve()
    entry = insight.solve_telemetry("solve.phase1", "bb", solution)
    assert entry["site"] == "solve.phase1"
    assert entry["backend"] == "bb"
    assert entry["status"] == "OPTIMAL"
    assert entry["gap"] == pytest.approx(0.0)
    assert entry["gap_timeline"]["closed"]
    assert pickle.loads(pickle.dumps(entry)) == entry


def test_cut_effect_attribution_fields():
    solution = _solve()
    effect = insight.cut_effect(0, 3, -1.0, solution, "solve.cut_resolve")
    assert effect["cut_index"] == 0
    assert effect["members"] == 3
    # new objective - previous objective
    assert effect["bound_delta"] == pytest.approx(solution.objective + 1.0)
    assert effect["resolve_status"] == "OPTIMAL"
    assert effect["resolve_seconds"] >= 0


def test_scheduler_trace_carries_solves_cuts_and_paper_metrics():
    fn = parse_function(CUT_TRIGGER)
    result = optimize_function(fn, ScheduleFeatures(time_limit=30))
    trace = result.trace
    sites = [s["site"] for s in trace.solves]
    assert "solve.phase1" in sites and "solve.cut_resolve" in sites
    for entry in trace.solves:
        assert entry["gap_timeline"]["closed"]
        assert len(entry["gap_timeline"]["samples"]) >= 2
    assert len(trace.cuts) == 1
    cut = trace.cuts[0]
    assert cut["resolve_status"] == "OPTIMAL"
    assert cut["resolve_seconds"] > 0
    assert cut["resolve_nodes"] >= 1
    paper = trace.paper_metrics
    assert paper["routine"] == "fbound"
    assert paper["quality"] == result.quality
    assert paper["instructions_out"] >= 1
    # Gap surfaces through ilp_size and the report text.
    assert result.ilp_size["gap"] == pytest.approx(0.0)
    assert "final optimality gap" in result.report()


def test_paper_metrics_row_shape():
    fn = parse_function(SMALL)
    result = optimize_function(fn, ScheduleFeatures(time_limit=30))
    row = insight.paper_metrics(result)
    for key in (
        "static_reduction", "weighted_ipc_in", "weighted_ipc_out",
        "delta_instructions", "delta_bundles", "nop_density_in",
        "nop_density_out", "compensation_copies", "spec_possible",
        "spec_used",
    ):
        assert key in row, key
    assert 0.0 <= row["nop_density_out"] <= 1.0


def test_aggregate_paper_metrics_averages_and_sums():
    rows = [
        {"routine": "a", "quality": "optimal", "static_reduction": 0.2,
         "instructions_in": 10, "instructions_out": 12},
        {"routine": "b", "quality": "incumbent", "static_reduction": 0.4,
         "instructions_in": 20, "instructions_out": 18},
        None,  # degraded pool outcome: skipped
    ]
    summary = insight.aggregate_paper_metrics(rows)
    assert summary["routines"] == 2
    assert summary["by_quality"] == {"optimal": 1, "incumbent": 1}
    assert summary["average"]["static_reduction"] == pytest.approx(0.3)
    assert summary["total"]["instructions_in"] == 30
    assert insight.aggregate_paper_metrics([])["routines"] == 0


def test_serve_summary_from_metrics_dump():
    metrics = {
        "counters": {
            'cache_hits_total{kind="exact"}': 6.0,
            'cache_hits_total{kind="family"}': 2.0,
            'cache_hits_total{kind="miss"}': 2.0,
            "coalesced_requests_total": 3.0,
            'cache_store_errors_total{op="get"}': 1.0,
            'cache_store_errors_total{op="put"}': 1.0,
            "cache_corrupt_entries_total": 1.0,
            "cache_evictions_total": 4.0,
        },
        "gauges": {"cache_size_bytes": 12345.0},
    }
    digest = insight.serve_summary(metrics)
    assert digest["requests"] == 10.0
    assert digest["hits"] == {"exact": 6.0, "family": 2.0, "miss": 2.0}
    assert digest["hit_rate"] == pytest.approx(0.8)
    assert digest["coalesced"] == 3.0
    assert digest["solves"] == 2.0
    assert digest["store_errors"] == 2.0  # both ops summed
    assert digest["corrupt_entries"] == 1.0
    assert digest["evictions"] == 4.0
    assert digest["size_bytes"] == 12345.0


def test_serve_summary_empty_and_none():
    for metrics in (None, {}, {"counters": {}, "gauges": {}}):
        digest = insight.serve_summary(metrics)
        assert digest["requests"] == 0
        assert digest["hit_rate"] == 0.0


def test_decompose_summary_from_metrics_dump():
    metrics = {
        "counters": {
            "decompose_partitions_total": 8.0,
            "partition_cache_hits_total": 6.0,
            "partition_cache_misses_total": 2.0,
        },
        "histograms": {
            "partition_solve_seconds": {
                "buckets": {"+Inf": 8},
                "sum": 4.0,
                "count": 8,
            }
        },
    }
    digest = insight.decompose_summary(metrics)
    assert digest["partitions"] == 8.0
    assert digest["cache_hits"] == 6.0
    assert digest["cache_misses"] == 2.0
    assert digest["hit_rate"] == pytest.approx(0.75)
    assert digest["solves"] == 8.0
    assert digest["solve_seconds"] == pytest.approx(4.0)
    assert digest["mean_solve_seconds"] == pytest.approx(0.5)


def test_decompose_summary_empty_and_live(tmp_path):
    for metrics in (None, {}, {"counters": {}, "histograms": {}}):
        digest = insight.decompose_summary(metrics)
        assert digest["partitions"] == 0
        assert digest["hit_rate"] == 0.0
        assert digest["mean_solve_seconds"] == 0.0

    from repro.obs import core as obs
    from repro.obs import export
    from repro.sched.scheduler import ScheduleFeatures as SF
    from repro.sched.scheduler import optimize_function
    from repro.workloads.generator import MultiRegionSpec, generate_multi_region

    fn = generate_multi_region(
        MultiRegionSpec(
            name="mrobs", segments=4, segment_instructions=10,
            segment_blocks=4, seed=5,
        )
    )
    obs.disable()
    obs.enable()
    try:
        result = optimize_function(
            fn,
            SF(time_limit=90, max_hops=4, decompose_min_instructions=24),
        )
        digest = insight.decompose_summary(export.metrics_dict())
    finally:
        obs.disable()
    assert any("decomposed into" in m for m in result.messages)
    assert digest["partitions"] >= 2
    assert digest["solves"] == digest["partitions"]
    assert digest["solve_seconds"] > 0.0


def test_serve_summary_from_live_serve_run(tmp_path):
    from repro.obs import core as obs
    from repro.obs import export
    from repro.sched.scheduler import ScheduleFeatures as SF
    from repro.serve.service import ScheduleService

    fn = parse_function(SMALL)
    obs.disable()
    obs.enable()
    try:
        svc = ScheduleService(tmp_path / "cache", default_features=SF(time_limit=20))
        svc.request(fn)
        svc.request(fn)
        digest = insight.serve_summary(export.metrics_dict())
    finally:
        obs.disable()
    assert digest["requests"] == 2
    assert digest["hits"]["exact"] == 1
    assert digest["hits"]["miss"] == 1


def test_swp_summary_from_metrics_dump():
    metrics = {
        "counters": {
            'swp_loops_total{status="pipelined"}': 4.0,
            'swp_loops_total{status="fallback_swp"}': 1.0,
            'swp_loops_total{status="unpipelined"}': 1.0,
            "swp_ii_at_mii_total": 4.0,
            'swp_oracle_total{result="pass"}': 5.0,
            'swp_fallbacks_total{reason="not_counted"}': 1.0,
            "swp_cache_hits_total": 2.0,
            "swp_cache_misses_total": 2.0,
        },
        "histograms": {
            "swp_ii_over_mii": {
                "sum": 5.5, "count": 5, "buckets": {"+Inf": 5},
            },
        },
    }
    digest = insight.swp_summary(metrics)
    assert digest["loops"] == 6.0
    assert digest["by_status"]["pipelined"] == 4.0
    assert digest["pipelined"] == 5.0
    assert digest["pipelined_rate"] == pytest.approx(5 / 6)
    assert digest["ii_at_mii"] == 4.0
    assert digest["ii_at_mii_rate"] == pytest.approx(0.8)
    assert digest["mean_ii_over_mii"] == pytest.approx(1.1)
    assert digest["oracle"]["pass"] == 5.0
    assert digest["fallbacks"]["not_counted"] == 1.0
    assert digest["cache_hits"] == 2.0
    assert digest["cache_hit_rate"] == pytest.approx(0.5)


def test_swp_summary_empty_and_live():
    for metrics in (None, {}, {"counters": {}, "histograms": {}}):
        digest = insight.swp_summary(metrics)
        assert digest["loops"] == 0
        assert digest["pipelined_rate"] == 0.0
        assert digest["ii_at_mii_rate"] == 0.0
        assert digest["oracle"] == {}

    from repro.obs import core as obs
    from repro.obs import export

    counted = """
.proc swpobs
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r15 = r32, 0
  mov r9 = 0
.block LOOP freq=130 succ=LOOP:0.92,POST:0.08
  ld8 r21 = [r15+0] cls=heap
  xor r23 = r21, r33
  st8 [r33+8] = r23 cls=glob
  adds r15 = 8, r15
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, 6
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r23, 0
  br.ret b0
.endp
"""
    fn = parse_function(counted)
    obs.disable()
    obs.enable()
    try:
        result = optimize_function(
            fn, ScheduleFeatures(time_limit=60, swp=True)
        )
        digest = insight.swp_summary(export.metrics_dict())
    finally:
        obs.disable()
    assert result.swp_outcomes, result.messages
    assert digest["loops"] >= 1
    assert digest["pipelined"] >= 1
    assert digest["oracle"].get("pass", 0) >= 1
