"""Observability tests share one invariant: no leaked global recorder."""

import pytest

from repro.obs import core as obs


@pytest.fixture
def clean_obs():
    """Recording off before and after, regardless of what the test does."""
    obs.disable()
    yield obs
    obs.disable()


@pytest.fixture
def recording(clean_obs):
    """Recording on with a fresh recorder; off again afterwards."""
    clean_obs.enable()
    return clean_obs
