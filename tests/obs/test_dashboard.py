"""HTML dashboard: renders from every artifact form, stays self-contained."""

import json

import pytest

from repro.ir.parser import parse_function
from repro.obs import dashboard, export
from repro.sched.scheduler import ScheduleFeatures, optimize_function

CUT_TRIGGER = """
.proc fbound
.livein r32, f5, f6, f8, f9
.liveout r8, f4, f7
.block A freq=100
  fma f4 = f5, f6
  fma f7 = f8, f9
  movl r10 = 99999
  add r8 = r10, r32
  br.ret b0
.endp
"""


@pytest.fixture
def recorded_run(recording):
    fn = parse_function(CUT_TRIGGER)
    optimize_function(fn, ScheduleFeatures(time_limit=30))
    return recording


def test_dashboard_from_recorder_has_all_sections(recorded_run):
    html = dashboard.dashboard_from_recorder()
    assert dashboard.validate_self_contained(html) == []
    for section in (
        "Span waterfall", "Gap timelines", "Bundling-cut effectiveness",
        "Paper metrics", "Metrics",
    ):
        assert section in html, section
    # The traced fbound run yields actual chart content, not fallbacks.
    assert "polyline" in html          # gap convergence plot
    assert "bound delta" in html       # cut table rendered
    assert "fbound" in html            # paper-metric row


def test_dashboard_from_artifact_files(recorded_run, tmp_path):
    trace_path = tmp_path / "trace.json"
    events_path = tmp_path / "events.jsonl"
    metrics_path = tmp_path / "metrics.json"
    export.write_chrome_trace(trace_path)
    export.write_jsonl(events_path)
    export.write_metrics(metrics_path)
    kinds = {}
    payloads = {}
    for path in (trace_path, events_path, metrics_path):
        kind, payload = dashboard.load_artifact(path)
        kinds[path.name] = kind
        payloads[path.name] = payload
    assert kinds == {
        "trace.json": "trace",
        "events.jsonl": "trace",
        "metrics.json": "metrics",
    }
    for source in ("trace.json", "events.jsonl"):
        html = dashboard.render_dashboard(
            trace=payloads[source], metrics=payloads["metrics.json"]
        )
        assert dashboard.validate_self_contained(html) == []
        assert "polyline" in html and "fbound" in html


def test_write_dashboard_refuses_external_references(tmp_path):
    # A span attribute smuggling in an external URL must be caught.
    poisoned = {
        "traceEvents": [{
            "name": "optimize", "ph": "X", "pid": 1, "tid": 0,
            "ts": 0.0, "dur": 10.0,
            "args": {"routine": "see https://evil.example/x"},
        }]
    }
    html = dashboard.render_dashboard(trace=poisoned)
    problems = dashboard.validate_self_contained(html)
    assert problems and "https://" in problems[0]
    with pytest.raises(ValueError, match="self-contained"):
        dashboard.write_dashboard(tmp_path / "dash.html", trace=poisoned)


def test_empty_inputs_degrade_to_notes():
    html = dashboard.render_dashboard()
    assert dashboard.validate_self_contained(html) == []
    assert "no spans recorded" in html
    assert "no gap timelines recorded" in html
    assert "no metrics dump provided" in html


def test_load_artifact_rejects_unknown_shape(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text(json.dumps({"not": "an artifact"}))
    with pytest.raises(ValueError):
        dashboard.load_artifact(path)


def test_cache_panel_renders_from_metrics():
    metrics = {
        "counters": {
            'cache_hits_total{kind="exact"}': 5.0,
            'cache_hits_total{kind="miss"}': 5.0,
            "coalesced_requests_total": 2.0,
        },
        "gauges": {},
        "histograms": {},
    }
    html = dashboard.render_dashboard(metrics=metrics)
    assert dashboard.validate_self_contained(html) == []
    assert "Schedule cache" in html
    assert "hit mix" in html
    assert "coalesced requests" in html


def test_cache_panel_degrades_without_activity():
    html = dashboard.render_dashboard(metrics={"counters": {}, "gauges": {}})
    assert "no schedule-cache activity recorded" in html
    assert "region decomposition" not in html
    assert dashboard.validate_self_contained(html) == []


def test_cache_panel_shows_partition_rows():
    metrics = {
        "counters": {
            "decompose_partitions_total": 4.0,
            "partition_cache_hits_total": 3.0,
            "partition_cache_misses_total": 1.0,
        },
        "gauges": {},
        "histograms": {
            "partition_solve_seconds": {
                "buckets": {"+Inf": 4},
                "sum": 2.0,
                "count": 4,
            }
        },
    }
    html = dashboard.render_dashboard(metrics=metrics)
    assert dashboard.validate_self_contained(html) == []
    assert "region decomposition" in html
    assert "partitions solved" in html
    assert "partition hit rate" in html
    assert "mean per-partition solve" in html


def test_swp_panel_renders_from_metrics():
    metrics = {
        "counters": {
            'swp_loops_total{status="pipelined"}': 3.0,
            'swp_loops_total{status="unpipelined"}': 1.0,
            "swp_ii_at_mii_total": 3.0,
            'swp_oracle_total{result="pass"}': 3.0,
        },
        "histograms": {
            "swp_ii_over_mii": {
                "sum": 3.0, "count": 3, "buckets": {"+Inf": 3},
            },
        },
    }
    html = dashboard.render_dashboard(metrics=metrics)
    assert "Software pipelining" in html
    assert "pipelined" in html
    assert dashboard.validate_self_contained(html) == []


def test_swp_panel_degrades_without_activity():
    html = dashboard.render_dashboard(metrics={"counters": {}})
    assert "Software pipelining" in html
    assert "no software-pipelined loops recorded" in html
