"""Exporters and their schema validators."""

import json

import pytest

from repro.obs import core as obs
from repro.obs import export


def _record_sample():
    with obs.span("optimize", routine="f"):
        with obs.span("solve.phase1", backend="highs"):
            pass
        obs.event("cut.appended", members=3)
    obs.counter("solves_total", 2, backend="highs")
    obs.histogram("solve_seconds", 0.25, backend="highs")


def test_exporters_require_a_recorder(clean_obs):
    with pytest.raises(RuntimeError, match="not enabled"):
        export.chrome_trace()
    with pytest.raises(RuntimeError, match="REPRO_OBS"):
        export.metrics_dict()


# -- JSONL --------------------------------------------------------------------


def test_jsonl_meta_line_then_parseable_events(recording, tmp_path):
    _record_sample()
    path = tmp_path / "events.jsonl"
    count = export.write_jsonl(path)
    lines = path.read_text().splitlines()
    assert len(lines) == count
    records = [json.loads(line) for line in lines]
    assert records[0]["type"] == "meta"
    assert records[0]["pid"] == obs.recorder().pid
    types = {r.get("type") for r in records[1:]}
    assert types == {"span", "instant"}


# -- Chrome trace -------------------------------------------------------------


def test_chrome_trace_schema_and_content(recording):
    _record_sample()
    trace = export.chrome_trace()
    assert export.validate_chrome_trace(trace) == []
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in meta)
    spans = {e["name"]: e for e in events if e["ph"] == "X"}
    assert {"optimize", "solve.phase1"} <= set(spans)
    # microsecond timestamps, parent links preserved through args
    child = spans["solve.phase1"]
    assert child["args"]["parent_span_id"] == spans["optimize"]["args"]["span_id"]
    assert child["dur"] >= 0
    instants = [e for e in events if e["ph"] == "i"]
    assert instants and all(e["s"] == "t" for e in instants)


def test_chrome_trace_file_roundtrip(recording, tmp_path):
    _record_sample()
    path = tmp_path / "trace.json"
    export.write_chrome_trace(path)
    assert export.validate_chrome_trace(json.loads(path.read_text())) == []


def test_validate_chrome_trace_flags_problems():
    assert export.validate_chrome_trace([]) != []
    bad = {"traceEvents": [{"ph": "X", "ts": 0.0}]}
    problems = export.validate_chrome_trace(bad)
    assert any("missing 'name'" in p for p in problems)
    assert any("'dur'" in p for p in problems)


# -- metrics ------------------------------------------------------------------


def test_metrics_json_file_validates_after_roundtrip(recording, tmp_path):
    _record_sample()
    path = tmp_path / "metrics.json"
    export.write_metrics(path)
    loaded = json.loads(path.read_text())
    # json.dump(sort_keys=True) scrambles bucket-key order; the validator
    # must still see cumulative counts.
    assert export.validate_metrics(loaded) == []
    assert loaded["counters"]['solves_total{backend="highs"}'] == 2.0


def test_metrics_prom_suffix_writes_prometheus_text(recording, tmp_path):
    _record_sample()
    path = tmp_path / "metrics.prom"
    export.write_metrics(path)
    text = path.read_text()
    assert "# TYPE solves_total counter" in text
    assert 'solve_seconds_bucket' in text


def test_validate_metrics_flags_problems():
    assert export.validate_metrics([]) != []
    broken = {
        "counters": {"c": -1},
        "gauges": {},
        "histograms": {
            "h": {"buckets": {"1": 5, "2": 3, "+Inf": 3}, "sum": 1.0, "count": 9}
        },
    }
    problems = export.validate_metrics(broken)
    assert any("non-negative" in p for p in problems)
    assert any("not cumulative" in p for p in problems)
    assert any("count != cumulative" in p for p in problems)
