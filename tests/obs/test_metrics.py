"""MetricsRegistry: bucketing, label series, merge, exports."""

import math

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    DEFAULT_BUCKETS,
    METRIC_HELP,
    MetricsRegistry,
    _bucket_index,
)


# -- bucket boundaries --------------------------------------------------------


def test_bucket_index_le_semantics():
    bounds = (1.0, 5.0, 10.0)
    assert _bucket_index(bounds, 0.5) == 0
    assert _bucket_index(bounds, 1.0) == 0  # le: boundary goes low
    assert _bucket_index(bounds, 1.0000001) == 1
    assert _bucket_index(bounds, 5.0) == 1
    assert _bucket_index(bounds, 10.0) == 2
    assert _bucket_index(bounds, 11.0) == 3  # +inf overflow slot
    assert _bucket_index(bounds, math.nan) == 3


def test_observe_uses_declared_bounds_and_default_fallback():
    reg = MetricsRegistry()
    reg.observe("solve_nodes", 7)
    hist = reg.histograms[("solve_nodes", ())]
    assert hist["bounds"] == tuple(float(b) for b in BUCKET_BOUNDS["solve_nodes"])
    reg.observe("undeclared_metric", 0.2)
    fallback = reg.histograms[("undeclared_metric", ())]
    assert fallback["bounds"] == DEFAULT_BUCKETS


def test_observe_accumulates_sum_count_and_buckets():
    reg = MetricsRegistry()
    for value in (0.0, 1.0, 2.0, 100.0):
        reg.observe("bundling_cuts_per_routine", value)
    hist = reg.histograms[("bundling_cuts_per_routine", ())]
    assert hist["count"] == 4
    assert hist["sum"] == 103.0
    # bounds (0,1,2,3,4,6,8,12,16): 0->slot0, 1->slot1, 2->slot2, 100->+inf
    assert hist["counts"][0] == 1
    assert hist["counts"][1] == 1
    assert hist["counts"][2] == 1
    assert hist["counts"][-1] == 1


# -- series and labels --------------------------------------------------------


def test_counter_series_split_by_labels():
    reg = MetricsRegistry()
    reg.counter_add("solves_total", backend="highs")
    reg.counter_add("solves_total", 2, backend="bb")
    reg.counter_add("solves_total", backend="highs")
    assert reg.counters[("solves_total", (("backend", "highs"),))] == 2.0
    assert reg.counters[("solves_total", (("backend", "bb"),))] == 2.0


def test_label_order_does_not_split_series():
    reg = MetricsRegistry()
    reg.counter_add("faults_fired_total", site="bundle", kind="error")
    reg.counter_add("faults_fired_total", kind="error", site="bundle")
    assert len(reg.counters) == 1


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge_set("queue_depth", 3)
    reg.gauge_set("queue_depth", 1)
    assert reg.gauges[("queue_depth", ())] == 1.0


# -- merge --------------------------------------------------------------------


def test_merge_state_adds_counters_and_buckets():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter_add("solves_total", 1, backend="highs")
    b.counter_add("solves_total", 3, backend="highs")
    a.observe("solve_seconds", 0.02)
    b.observe("solve_seconds", 0.02)
    b.observe("solve_seconds", 400.0)
    a.merge_state(b.to_state())
    assert a.counters[("solves_total", (("backend", "highs"),))] == 4.0
    hist = a.histograms[("solve_seconds", ())]
    assert hist["count"] == 3
    assert hist["counts"][1] == 2  # both 0.02s observations share a bucket
    assert hist["counts"][-1] == 1  # 400s lands in +inf


def test_merge_state_rejects_mismatched_bounds():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.observe("solve_seconds", 1.0)
    b.observe("solve_seconds", 1.0)
    state = b.to_state()
    state["histograms"][0][2]["bounds"][0] = 123.0
    with pytest.raises(ValueError, match="bounds mismatch"):
        a.merge_state(state)


def test_merge_into_empty_registry_copies_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    b.observe("solve_nodes", 5)
    a.merge_state(b.to_state())
    assert a.histograms[("solve_nodes", ())]["count"] == 1


# -- exports ------------------------------------------------------------------


def test_as_dict_buckets_are_cumulative_with_inf():
    reg = MetricsRegistry()
    for value in (0.005, 0.02, 9000.0):
        reg.observe("solve_seconds", value)
    dump = reg.as_dict()
    hist = dump["histograms"]["solve_seconds"]
    assert hist["buckets"]["+Inf"] == 3
    assert hist["buckets"]["0.01"] == 1
    assert hist["buckets"]["300"] == 2  # 9000s only appears in +Inf
    assert hist["count"] == 3


def test_prometheus_text_shape():
    reg = MetricsRegistry()
    reg.counter_add("solves_total", 2, backend="highs")
    reg.gauge_set("queue_depth", 1)
    reg.observe("solve_seconds", 0.3)
    text = reg.prometheus_text()
    assert '# TYPE solves_total counter' in text
    assert 'solves_total{backend="highs"} 2' in text
    assert '# TYPE solve_seconds histogram' in text
    assert 'solve_seconds_bucket{le="+Inf"} 1' in text
    assert 'solve_seconds_count 1' in text


def test_prometheus_text_help_lines_precede_type():
    reg = MetricsRegistry()
    reg.counter_add("solves_total", 1, backend="bb")
    reg.counter_add("some_adhoc_total", 1)
    text = reg.prometheus_text()
    lines = text.splitlines()
    # Every family: exactly one HELP line directly above its TYPE line.
    for name in ("solves_total", "some_adhoc_total"):
        type_at = next(
            i for i, l in enumerate(lines) if l.startswith(f"# TYPE {name} ")
        )
        assert lines[type_at - 1].startswith(f"# HELP {name} ")
        assert sum(1 for l in lines if l.startswith(f"# HELP {name} ")) == 1
    assert f"# HELP solves_total {METRIC_HELP['solves_total']}" in text
    # Unregistered names still carry a generic HELP line.
    assert "# HELP some_adhoc_total some_adhoc_total (unregistered)" in text


def test_prometheus_label_value_escaping():
    reg = MetricsRegistry()
    reg.counter_add(
        "routine_fallback_total",
        1,
        routine='we"ird\\name\nwith newline',
    )
    text = reg.prometheus_text()
    assert 'routine="we\\"ird\\\\name\\nwith newline"' in text
    assert "\nwith newline" not in text.replace("\\n", "")  # no raw newline
