"""End-to-end instrumentation through the scheduler pipeline."""

import pickle

import pytest

from repro.obs import core as obs
from repro.obs import export
from repro.sched.scheduler import IlpScheduler, ScheduleFeatures
from repro.tools import faults

FEATURES = ScheduleFeatures(time_limit=30)


def test_trace_rides_result_with_recording_off(clean_obs, diamond_fn):
    result = IlpScheduler(features=FEATURES).optimize(diamond_fn)
    assert result.quality == "optimal"
    assert obs.recorder() is None  # recording stayed off
    durations = result.phase_timings()
    for phase in ("optimize", "analyze", "solve.phase1", "verify"):
        assert phase in durations
    assert "phases:" in result.report()
    assert "phase 1" in result.phase_breakdown()


def test_phase_durations_nest_inside_optimize(clean_obs, diamond_fn):
    result = IlpScheduler(features=FEATURES).optimize(diamond_fn)
    durations = result.phase_timings()
    total = durations["optimize"]["seconds"]
    children = sum(
        agg["seconds"]
        for name, agg in durations.items()
        if name in ("analyze", "input_schedule", "ilp.build",
                    "solve.phase1", "bundle", "solve.phase2", "verify")
    )
    assert children <= total + 1e-6


def test_recording_captures_solver_spans_and_metrics(recording, diamond_fn):
    result = IlpScheduler(features=FEATURES).optimize(diamond_fn)
    assert result.quality == "optimal"
    names = {e["name"] for e in obs.recorder().events}
    assert {"optimize", "solve.phase1", "ilp.solve"} <= names
    dump = export.metrics_dict()
    routine = result.fn.name
    assert (
        dump["counters"][
            f'routine_fallback_total{{routine="{routine}",tier="optimal"}}'
        ]
        == 1.0
    )
    assert any(k.startswith("solves_total") for k in dump["counters"])
    assert any(k.startswith("solve_seconds") for k in dump["histograms"])
    assert any(
        k.startswith("deadline_fraction_consumed") for k in dump["histograms"]
    )
    assert export.validate_chrome_trace(export.chrome_trace()) == []


def test_bb_backend_records_presolve_and_simplex_telemetry(recording, diamond_fn):
    features = ScheduleFeatures(backend="bb", time_limit=30)
    result = IlpScheduler(features=features).optimize(diamond_fn)
    assert result.quality == "optimal"
    names = {e["name"] for e in obs.recorder().events}
    assert "presolve" in names
    dump = export.metrics_dict()
    assert dump["counters"]["presolve_calls_total"] >= 1
    assert any(
        k.startswith("simplex_iterations_total") for k in dump["counters"]
    )


def test_degraded_routine_still_reports_tier_and_trace(recording, diamond_fn):
    # An injected phase-1 timeout with no incumbent degrades the routine
    # to its input schedule (solve sites ignore the "error" kind).
    with faults.inject("solve.phase1=timeout:99"):
        result = IlpScheduler(features=FEATURES).optimize(diamond_fn)
    assert result.quality == "fallback_input"
    assert result.trace is not None
    assert "optimize" in result.phase_timings()
    routine = result.fn.name
    dump = export.metrics_dict()
    assert (
        dump["counters"][
            f'routine_fallback_total{{routine="{routine}",tier="fallback_input"}}'
        ]
        == 1.0
    )
    assert any(
        k.startswith("faults_fired_total") for k in dump["counters"]
    )


def test_result_with_trace_pickles(recording, diamond_fn):
    result = IlpScheduler(features=FEATURES).optimize(diamond_fn)
    clone = pickle.loads(pickle.dumps(result))
    assert clone.phase_timings().keys() == result.phase_timings().keys()


def test_optimize_propagates_fault_config_errors(clean_obs, diamond_fn, monkeypatch):
    """A malformed REPRO_FAULTS spec must surface, not degrade silently."""
    monkeypatch.setenv(faults.ENV_VAR, "solve.phaseX=timeout")
    faults.reset_env_cache()
    try:
        with pytest.raises(faults.FaultConfigError, match="solve.phaseX"):
            IlpScheduler(features=FEATURES).optimize(diamond_fn)
    finally:
        monkeypatch.delenv(faults.ENV_VAR)
        faults.reset_env_cache()
