"""``tia-telemetry``: rollup correctness, SLO gating, CLI plumbing.

The rollup is tested against hand-built journals (every outcome kind,
multiple replicas, portfolio summaries), the SLO engine against both
rule syntaxes and the gate exit codes, and the counter reconstruction
against the documented exit-path mapping.
"""

import json

import pytest

from repro.obs import telemetry
from repro.obs.journal import TelemetryJournal, request_record, seal_record


def _write_journal(root, records):
    journal = TelemetryJournal(root)
    for record in records:
        assert journal.append(record)
    journal.close()


def _mixed_records():
    return [
        request_record(
            "ok",
            trace_id="t1",
            request_id="r1",
            family="famA",
            routines=[
                {"routine": "x", "kind": "miss", "quality": "optimal"}
            ],
            timings={"queue_wait": 0.01, "solve": 0.2, "total": 0.25},
            cache_kinds={"miss": 1},
            portfolio={"races": 1, "winner": "highs", "seed_transfers": 2},
            replica="a:1",
        ),
        request_record(
            "ok",
            trace_id="t2",
            request_id="r2",
            family="famA",
            routines=[
                {"routine": "x", "kind": "exact", "quality": "optimal"}
            ],
            timings={"queue_wait": 0.02, "solve": 0.0, "total": 0.05},
            cache_kinds={"exact": 1},
            replica="a:1",
        ),
        request_record(
            "busy", trace_id="t3", shed_reason="overload", replica="a:1"
        ),
        request_record(
            "error", request_id="r4", error="no routines in payload",
            replica="a:1",
        ),
        request_record("drained", shed_reason="draining", replica="a:1"),
        request_record("fault", fault="serve.accept", replica="a:1"),
        request_record("probe", request_id="h1", replica="a:1"),
        seal_record(
            {
                "kind": "portfolio_summary",
                "ts": 99.0,
                "replica": "a:1",
                "families": {"famA": {"highs#0": 1}},
                "counters": {
                    "completed": 2, "shed": 1, "drained": 1,
                    "probes": 1, "accept_errors": 1, "rejected": 4,
                },
                "drain_reason": "max-requests",
                "write_errors": 0,
            }
        ),
    ]


class TestRollup:
    def test_counters_reconstruct_exit_paths(self, tmp_path):
        _write_journal(tmp_path / "j", _mixed_records())
        rollup = telemetry.journal_rollup(tmp_path / "j")
        assert rollup["counters"] == {
            "completed": 2,
            "shed": 1,
            "drained": 1,
            "probes": 1,
            "accept_errors": 1,
            "rejected": 4,
        }
        # ... and matches what the replica itself reported at drain.
        assert rollup["reported_counters"] == rollup["counters"]

    def test_rollup_facets(self, tmp_path):
        _write_journal(tmp_path / "j", _mixed_records())
        rollup = telemetry.journal_rollup(tmp_path / "j")
        assert rollup["requests"] == 6  # probe excluded
        assert rollup["cache_kinds"] == {"miss": 1, "exact": 1}
        assert rollup["cache_hit_rate"] == 0.5
        assert rollup["shed_reasons"] == {"overload": 1, "draining": 1}
        assert rollup["faults"] == {"serve.accept": 1}
        assert rollup["distinct_traces"] == 3
        fam = rollup["families"]["famA"]
        assert fam["requests"] == 2
        assert fam["portfolio_wins"] == {"highs": 1}
        assert fam["seed_transfers"] == 2
        assert fam["latency"]["count"] == 2
        assert rollup["latency"]["total"]["count"] == 2

    def test_empty_journal(self, tmp_path):
        rollup = telemetry.journal_rollup(tmp_path / "missing")
        assert rollup["records"] == 0
        assert rollup["counters"]["completed"] == 0
        assert rollup["cache_hit_rate"] is None


class TestSloRules:
    def test_parse_rule_forms(self):
        assert telemetry.parse_rule("ok_rate>=0.9") == {
            "metric": "ok_rate", "min": 0.9,
        }
        assert telemetry.parse_rule("p99_total <= 2.5") == {
            "metric": "p99_total", "max": 2.5,
        }

    def test_parse_rule_rejects_garbage(self):
        for expr in ("ok_rate=0.9", "nope>=1", "ok_rate>=fast", ""):
            with pytest.raises(telemetry.SloRuleError):
                telemetry.parse_rule(expr)

    def test_check_slos(self, tmp_path):
        _write_journal(tmp_path / "j", _mixed_records())
        rollup = telemetry.journal_rollup(tmp_path / "j")
        results = telemetry.check_slos(
            rollup,
            [
                {"metric": "ok_rate", "min": 0.2},
                {"metric": "ok_rate", "min": 0.99},
                {"metric": "requests", "min": 1},
                {"metric": "write_errors", "max": 0},
            ],
        )
        oks = [r["ok"] for r in results]
        assert oks == [True, False, True, True]
        assert "min" in results[1]["reason"]

    def test_unmeasurable_metric_fails_closed(self, tmp_path):
        _write_journal(
            tmp_path / "j", [request_record("busy", shed_reason="overload")]
        )
        rollup = telemetry.journal_rollup(tmp_path / "j")
        results = telemetry.check_slos(
            rollup, [{"metric": "p99_total", "max": 1.0}]
        )
        assert results[0]["ok"] is False
        assert "not measurable" in results[0]["reason"]

    def test_rules_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps([{"metric": "ok_rate", "min": 0.5}])
        )
        assert telemetry.load_rules(str(path)) == [
            {"metric": "ok_rate", "min": 0.5}
        ]
        path.write_text(json.dumps([{"metric": "bogus", "min": 1}]))
        with pytest.raises(telemetry.SloRuleError):
            telemetry.load_rules(str(path))


class TestCli:
    def test_report_and_families(self, tmp_path, capsys):
        _write_journal(tmp_path / "j", _mixed_records())
        assert telemetry.main(["report", str(tmp_path / "j")]) == 0
        out = capsys.readouterr().out
        assert "counters (reconstructed)" in out
        assert "[matches]" in out
        assert telemetry.main(["families", str(tmp_path / "j")]) == 0
        out = capsys.readouterr().out
        assert "famA" in out

    def test_report_json_roundtrips(self, tmp_path, capsys):
        _write_journal(tmp_path / "j", _mixed_records())
        assert telemetry.main(["report", str(tmp_path / "j"), "--json"]) == 0
        rollup = json.loads(capsys.readouterr().out)
        assert rollup["counters"]["completed"] == 2

    def test_tail(self, tmp_path, capsys):
        _write_journal(tmp_path / "j", _mixed_records())
        assert telemetry.main(
            ["tail", str(tmp_path / "j"), "-n", "3"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[-1])["kind"] == "portfolio_summary"
        assert telemetry.main(
            ["tail", str(tmp_path / "j"), "--kind", "request", "-n", "99"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(
            json.loads(line)["kind"] == "request" for line in lines
        )

    def test_slo_gate_exit_codes(self, tmp_path, capsys):
        _write_journal(tmp_path / "j", _mixed_records())
        root = str(tmp_path / "j")
        assert telemetry.main(
            ["slo", root, "--rule", "ok_rate>=0.1", "--gate"]
        ) == 0
        assert telemetry.main(
            ["slo", root, "--rule", "ok_rate>=0.99", "--gate"]
        ) == 1
        # Violation without --gate still exits 0 (report-only).
        assert telemetry.main(
            ["slo", root, "--rule", "ok_rate>=0.99"]
        ) == 0
        # Malformed rules are config errors: rc 2.
        assert telemetry.main(
            ["slo", root, "--rule", "bogus>=1", "--gate"]
        ) == 2
        assert telemetry.main(["slo", root, "--gate"]) == 2
        capsys.readouterr()

    def test_slo_json_output(self, tmp_path, capsys):
        _write_journal(tmp_path / "j", _mixed_records())
        assert telemetry.main(
            ["slo", str(tmp_path / "j"), "--rule", "ok_rate>=0.99", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == 1

    def test_gc_and_verify(self, tmp_path, capsys):
        journal = TelemetryJournal(tmp_path / "j", shard_bytes=200)
        for i in range(30):
            journal.append(seal_record({"kind": "note", "ts": float(i)}))
        journal.close()
        assert telemetry.main(
            ["gc", str(tmp_path / "j"), "--budget", "400"]
        ) == 0
        assert "evicted" in capsys.readouterr().out
        assert telemetry.main(["verify", str(tmp_path / "j")]) == 0
        assert "quarantined" in capsys.readouterr().out
