"""Property: stitched multi-process traces form one connected tree each.

The distributed-tracing pipeline promises that *any* topology of spans —
arbitrarily nested locally, fanned out across processes via
``trace_scope(trace_id, parent_ref)`` hops, merged back in any order —
exports to a Chrome trace in which every ``trace_id``'s spans form
exactly one connected tree (single root, no unreachable spans), with a
flow arrow per cross-process link.  Hypothesis generates the topologies;
:func:`repro.obs.export.trace_forest` and
:func:`~repro.obs.export.validate_trace_connectivity` are the oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.obs import core as obs
from repro.obs import export


@st.composite
def topologies(draw):
    """A forest of 1-2 traces, each a DAG of cross-process hops.

    Each hop is ``(process, chain_depth, parent_hop)``: a chain of
    nested spans recorded in one process, whose local root hangs off a
    span of the parent hop (``None`` = the trace root).
    """
    trees = []
    for _ in range(draw(st.integers(1, 2))):
        n_hops = draw(st.integers(1, 5))
        hops = []
        for j in range(n_hops):
            proc = draw(st.integers(0, 3))
            depth = draw(st.integers(1, 3))
            parent = None if j == 0 else draw(st.integers(0, j - 1))
            hops.append((proc, depth, parent))
        trees.append(hops)
    return trees


def _record_hop(rec, trace_id, remote_parent, depth, label):
    """One hop: a chain of ``depth`` nested spans in recorder ``rec``.

    Returns the refs of every span in the chain (stitch targets for
    child hops).
    """
    refs = []
    with obs.trace_scope(trace_id, remote_parent):
        spans = []
        for level in range(depth):
            span = obs.Span(rec, f"{label}.{level}", {})
            span.__enter__()
            spans.append(span)
            refs.append(span.ref)
        for span in reversed(spans):
            span.__exit__(None, None, None)
    return refs


def _snapshot_of(rec):
    """Module-level snapshot of a specific recorder instance."""
    saved = obs._recorder
    obs._recorder = rec
    try:
        return obs.snapshot()
    finally:
        obs._recorder = saved


@given(trees=topologies())
@settings(max_examples=40, deadline=None)
def test_merged_snapshots_stitch_into_connected_trees(trees):
    obs.disable()
    obs.enable()
    try:
        root_rec = obs.recorder()
        # Simulated remote processes: fresh recorders with distinct pids
        # (span refs are "pid.span_id", so pids must not collide).
        remote = {}

        def rec_for(proc):
            if proc == 0:
                return root_rec
            if proc not in remote:
                rec = obs.Recorder()
                rec.pid = 100000 + proc
                rec.process_labels = {rec.pid: f"simulated pid {rec.pid}"}
                remote[proc] = rec
            return remote[proc]

        expected = {}  # trace_id -> span count
        for tree_no, hops in enumerate(trees):
            trace_id = obs.new_trace_id()
            hop_refs = []
            for hop_no, (proc, depth, parent) in enumerate(hops):
                parent_ref = (
                    None if parent is None else hop_refs[parent][-1]
                )
                refs = _record_hop(
                    rec_for(proc), trace_id, parent_ref,
                    depth, f"t{tree_no}h{hop_no}",
                )
                hop_refs.append(refs)
            expected[trace_id] = sum(len(refs) for refs in hop_refs)

        # Merge the remote snapshots (any order) into the root recorder
        # and export one document.
        for proc in sorted(remote, reverse=True):
            obs.merge_snapshot(_snapshot_of(remote[proc]))
        doc = export.chrome_trace()

        assert export.validate_chrome_trace(doc) == []
        assert export.validate_trace_connectivity(doc) == []
        forest = export.trace_forest(doc)
        assert set(forest) == set(expected)
        for trace_id, info in forest.items():
            assert len(info["spans"]) == expected[trace_id]
            assert len(info["roots"]) == 1
            assert info["unreachable"] == []
    finally:
        obs.disable()


def test_unmerged_parent_is_not_stitched(clean_obs):
    """A hop whose parent snapshot never arrives must not fabricate a
    flow arrow — the span simply roots its own (partial) trace."""
    clean_obs.enable()
    rec = obs.recorder()
    trace_id = obs.new_trace_id()
    # Remote parent ref points at a pid that was never merged.
    _record_hop(rec, trace_id, "424242.7", 2, "orphan")
    doc = export.chrome_trace()
    assert export.validate_chrome_trace(doc) == []
    flows = [ev for ev in doc["traceEvents"] if ev.get("ph") in ("s", "f")]
    assert flows == []
    forest = export.trace_forest(doc)
    assert len(forest[trace_id]["roots"]) == 1


def test_expect_pids_detects_missing_process(clean_obs):
    clean_obs.enable()
    rec = obs.recorder()
    trace_id = obs.new_trace_id()
    _record_hop(rec, trace_id, None, 1, "local")
    doc = export.chrome_trace()
    assert export.validate_trace_connectivity(doc) == []
    problems = export.validate_trace_connectivity(
        doc, expect_pids=(rec.pid, 999999)
    )
    assert problems  # no single trace spans both pids
