"""Spans, the disabled fast path, traces and cross-process snapshots."""

import pickle
import time

from repro.obs import core as obs


# -- disabled fast path -------------------------------------------------------


def test_disabled_span_is_the_shared_noop_singleton(clean_obs):
    assert obs.span("anything") is obs.NOOP_SPAN
    assert obs.span("other") is obs.NOOP_SPAN  # same object every time


def test_disabled_mode_records_nothing(clean_obs):
    with obs.span("x"):
        obs.event("instant")
        obs.counter("c")
        obs.histogram("h", 1.0)
    assert obs.recorder() is None
    assert obs.snapshot() is None
    assert not obs.ENABLED


def test_enable_disable_roundtrip(clean_obs):
    rec = obs.enable()
    assert obs.ENABLED and obs.recorder() is rec
    assert obs.enable() is rec  # idempotent: same recorder
    obs.disable()
    assert not obs.ENABLED and obs.recorder() is None


def test_reset_swaps_recorder_and_keeps_recording_on(recording):
    first = obs.recorder()
    with obs.span("before-reset"):
        pass
    second = obs.reset()
    assert obs.ENABLED
    assert second is not first
    assert second.events == []


# -- live spans ---------------------------------------------------------------


def test_span_nesting_records_parent_links(recording):
    with obs.span("outer") as outer:
        with obs.span("inner") as inner:
            pass
    events = {e["name"]: e for e in obs.recorder().events}
    assert events["inner"]["parent"] == outer.span_id
    assert "parent" not in events["outer"]
    assert inner.span_id != outer.span_id


def test_span_timing_is_monotonic_and_nested(recording):
    with obs.span("outer"):
        with obs.span("inner"):
            time.sleep(0.01)
    events = {e["name"]: e for e in obs.recorder().events}
    inner, outer = events["inner"], events["outer"]
    assert inner["dur"] >= 0.01
    assert outer["dur"] >= inner["dur"]
    # The child starts after and ends before its parent.
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9
    # Inner finished (and was appended) first: timestamps stay coherent.
    assert obs.recorder().events[0]["name"] == "inner"


def test_span_attrs_and_error_flag(recording):
    try:
        with obs.span("failing", routine="f") as span:
            span.set_attr("nodes", 7)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (event,) = obs.recorder().events
    assert event["args"] == {"routine": "f", "nodes": 7}
    assert event["error"] == "RuntimeError"


def test_instant_events_attach_to_the_open_span(recording):
    with obs.span("outer") as outer:
        obs.event("tick", n=1)
    instant = next(
        e for e in obs.recorder().events if e["type"] == "instant"
    )
    assert instant["parent"] == outer.span_id
    assert instant["args"] == {"n": 1}


# -- always-on local traces ---------------------------------------------------


def test_trace_records_without_global_recording(clean_obs):
    trace = obs.Trace()
    with trace.span("optimize"):
        with trace.span("solve.phase1"):
            time.sleep(0.005)
        with trace.span("solve.phase1"):
            pass
    durations = trace.durations()
    assert durations["solve.phase1"]["count"] == 2
    assert durations["solve.phase1"]["seconds"] >= 0.005
    assert trace.total_seconds("optimize") >= durations["solve.phase1"]["seconds"]
    by_name = {r["name"]: r for r in trace.records}
    assert by_name["solve.phase1"]["parent"] == "optimize"
    assert by_name["optimize"]["parent"] is None
    assert obs.recorder() is None  # nothing leaked into the global API


def test_trace_counters_accumulate(clean_obs):
    trace = obs.Trace()
    trace.count("warm_start_hits")
    trace.count("warm_start_hits")
    trace.count("bundling_cuts", 3)
    assert trace.counters == {"warm_start_hits": 2, "bundling_cuts": 3}


def test_trace_mirrors_into_live_recorder(recording):
    trace = obs.Trace()
    with trace.span("optimize", routine="f"):
        pass
    (event,) = obs.recorder().events
    assert event["name"] == "optimize"
    assert event["args"]["routine"] == "f"


def test_trace_pickles_even_after_mirroring(recording):
    trace = obs.Trace()
    with trace.span("optimize"):
        with trace.span("verify"):
            pass
    clone = pickle.loads(pickle.dumps(trace))
    assert clone.durations().keys() == trace.durations().keys()


# -- cross-process snapshots --------------------------------------------------


def _fake_worker_snapshot(epoch_shift=2.0, pid=99999):
    """A snapshot as a worker would produce, with a shifted wall epoch."""
    rec = obs.Recorder()
    rec.pid = pid
    rec.process_labels = {pid: f"repro pid {pid}"}
    rec.epoch_wall += epoch_shift
    with obs.Span(rec, "optimize", {"routine": "w"}):
        pass
    rec.metrics.counter_add("solves_total", 2, backend="bb")
    snap = {
        "version": obs.SNAPSHOT_VERSION,
        "pid": rec.pid,
        "epoch_wall": rec.epoch_wall,
        "process_labels": dict(rec.process_labels),
        "events": [dict(e) for e in rec.events],
        "metrics": rec.metrics.to_state(),
    }
    return snap


def test_snapshot_roundtrips_plain_data(recording):
    with obs.span("outer"):
        obs.counter("solves_total", 1, backend="bb")
    snap = obs.snapshot()
    assert snap["version"] == obs.SNAPSHOT_VERSION
    assert snap["pid"] == obs.recorder().pid
    pickle.dumps(snap)  # ships across process boundaries


def test_merge_rebases_timestamps_and_keeps_pid_lanes(recording):
    parent_pid = obs.recorder().pid
    snap = _fake_worker_snapshot(epoch_shift=2.0)
    worker_ts = snap["events"][0]["ts"]
    obs.merge_snapshot(snap, role="worker")
    events = obs.recorder().events
    merged = next(e for e in events if e["pid"] == 99999)
    # Wall-vs-monotonic epoch capture jitters by sub-millisecond amounts;
    # re-basing only has to be accurate to well under a span's width.
    assert abs(merged["ts"] - (worker_ts + 2.0)) < 0.1
    assert obs.recorder().process_labels[99999] == "worker pid 99999"
    assert parent_pid in obs.recorder().process_labels
    # metrics folded add-wise
    key = ("solves_total", (("backend", "bb"),))
    assert obs.recorder().metrics.counters[key] == 2


def test_merge_is_noop_when_disabled_or_empty(clean_obs):
    obs.merge_snapshot(None)  # disabled + None: nothing to do, no error
    obs.enable()
    obs.merge_snapshot(None)
    assert obs.recorder().events == []
