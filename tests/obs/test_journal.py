"""Telemetry-journal durability: the store.py discipline, applied to JSONL.

The journal's promises, each tested here:

* appends round-trip (checksummed, schema-valid) and survive shard
  rotation; sealed shards are immutable;
* a torn tail line (crash mid-append) is skipped on read and tolerated
  by verify; mid-file corruption quarantines the whole shard;
* GC evicts oldest sealed shards to a byte budget and never the active
  shard;
* ``append`` **never raises** — the ``obs.journal`` fault site makes it
  fail on demand, and the failure must be counted, not thrown, with
  every already-written shard still fully readable.
"""

import json
import os
import threading

from repro.obs import journal as journal_mod
from repro.obs.journal import (
    TelemetryJournal,
    check_record,
    journal_shards,
    read_records,
    request_record,
    seal_record,
    validate_record,
)
from repro.tools import faults


def _note(index):
    return seal_record({"kind": "note", "ts": 1.0 + index, "n": index})


class TestRoundtrip:
    def test_append_then_read(self, tmp_path):
        journal = TelemetryJournal(tmp_path / "j")
        for i in range(5):
            assert journal.append(_note(i)) is True
        journal.close()
        records = list(read_records(tmp_path / "j"))
        assert [r["n"] for r in records] == list(range(5))
        assert all(check_record(r) for r in records)

    def test_request_record_schema(self):
        record = request_record(
            "ok",
            trace_id="ab" * 16,
            request_id="req-1",
            family="fam",
            routines=[{"routine": "r", "kind": "miss", "quality": "optimal"}],
            features={"backend": "highs"},
            timings={"queue_wait": 0.01, "solve": 0.5, "total": 0.6},
            cache_kinds={"miss": 1},
            portfolio={"winner": "highs", "seed_transfers": 2},
            replica="sock:1",
        )
        assert validate_record(record) == []

    def test_every_outcome_validates(self):
        for outcome in journal_mod.REQUEST_OUTCOMES:
            assert validate_record(request_record(outcome)) == []

    def test_bad_outcome_rejected(self):
        record = request_record("ok")
        record["outcome"] = "exploded"
        seal_record(record)
        assert any("outcome" in p for p in validate_record(record))

    def test_tampered_record_fails_checksum(self):
        record = _note(0)
        record["n"] = 999  # mutate after sealing
        assert not check_record(record)

    def test_non_numeric_timing_rejected(self):
        record = request_record("ok", timings={"total": 0.5})
        record["timings"]["total"] = "fast"
        seal_record(record)
        assert any("timing" in p for p in validate_record(record))


class TestRotationAndGc:
    def test_rotation_creates_new_shards(self, tmp_path):
        journal = TelemetryJournal(tmp_path / "j", shard_bytes=200)
        for i in range(20):
            journal.append(_note(i))
        journal.close()
        shards = journal_shards(tmp_path / "j")
        assert len(shards) > 1
        # Every record is still readable across the shard boundary.
        assert [r["n"] for r in read_records(tmp_path / "j")] == list(range(20))

    def test_gc_respects_budget_and_order(self, tmp_path):
        journal = TelemetryJournal(
            tmp_path / "j", shard_bytes=200, size_budget=None
        )
        for i in range(30):
            journal.append(_note(i))
        journal.close()
        before = journal_shards(tmp_path / "j")
        assert len(before) >= 3
        keep = sum(size for _p, size, _c in before[-2:])
        deleted = journal.gc(keep)
        # Oldest-first: what survives is a suffix of the record stream.
        survivors = [r["n"] for r in read_records(tmp_path / "j")]
        assert survivors == list(range(30))[-len(survivors):]
        assert deleted and journal.size_bytes() <= keep

    def test_gc_never_deletes_active_shard(self, tmp_path):
        journal = TelemetryJournal(tmp_path / "j", size_budget=None)
        journal.append(_note(0))
        journal.gc(0)  # budget zero: everything sealed would go
        assert journal.append(_note(1)) is True
        journal.close()
        assert [r["n"] for r in read_records(tmp_path / "j")] == [0, 1]


class TestCrashTolerance:
    def test_torn_tail_skipped_not_fatal(self, tmp_path):
        journal = TelemetryJournal(tmp_path / "j")
        for i in range(3):
            journal.append(_note(i))
        journal.close()
        path = journal_shards(tmp_path / "j")[0][0]
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "note", "torn')  # crash mid-append
        assert [r["n"] for r in read_records(tmp_path / "j")] == [0, 1, 2]
        # verify tolerates a bad *tail* line: no quarantine.
        ok, bad, quarantined = TelemetryJournal(tmp_path / "j").verify()
        assert (ok, bad, quarantined) == (3, 1, [])

    def test_midfile_corruption_quarantines(self, tmp_path):
        journal = TelemetryJournal(tmp_path / "j")
        for i in range(4):
            journal.append(_note(i))
        journal.close()
        path = journal_shards(tmp_path / "j")[0][0]
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b"garbage not json\n"
        with open(path, "wb") as handle:
            handle.writelines(lines)
        ok, bad, quarantined = TelemetryJournal(tmp_path / "j").verify()
        assert quarantined == [path]
        assert not os.path.exists(path)
        dest = os.path.join(
            str(tmp_path / "j"), "quarantine", os.path.basename(path)
        )
        assert os.path.exists(dest)
        # Plain readers see nothing from the quarantined shard.
        assert list(read_records(tmp_path / "j")) == []


class TestFaultInjection:
    def test_append_never_raises_under_fault(self, tmp_path, clean_obs):
        journal = TelemetryJournal(tmp_path / "j")
        assert journal.append(_note(0)) is True
        with faults.inject("obs.journal=error:2"):
            assert journal.append(_note(1)) is False
            assert journal.append(_note(2)) is False
            assert journal.append(_note(3)) is True
        assert journal.write_errors == 2
        journal.close()
        # Failed appends lost their records but corrupted nothing.
        records = list(read_records(tmp_path / "j"))
        assert [r["n"] for r in records] == [0, 3]
        ok, bad, quarantined = TelemetryJournal(tmp_path / "j").verify()
        assert bad == 0 and quarantined == []

    def test_fault_counted_in_metrics(self, tmp_path, recording):
        from repro.obs import export

        journal = TelemetryJournal(tmp_path / "j")
        with faults.inject("obs.journal=error:1"):
            journal.append(_note(0))
        dump = export.metrics_dict()
        assert dump["counters"]["journal_write_errors_total"] == 1.0

    def test_shards_stay_valid_under_sustained_faults(self, tmp_path):
        journal = TelemetryJournal(tmp_path / "j", shard_bytes=150)
        with faults.inject("obs.journal=error"):  # every append fails
            for i in range(10):
                assert journal.append(_note(i)) is False
        for i in range(10, 20):
            assert journal.append(_note(i)) is True
        journal.close()
        assert [r["n"] for r in read_records(tmp_path / "j")] == list(
            range(10, 20)
        )
        ok, bad, quarantined = TelemetryJournal(tmp_path / "j").verify()
        assert (bad, quarantined) == (0, [])


class TestConcurrency:
    def test_parallel_appends_all_land(self, tmp_path):
        journal = TelemetryJournal(tmp_path / "j", shard_bytes=500)
        per_thread = 25

        def writer(base):
            for i in range(per_thread):
                journal.append(_note(base + i))

        threads = [
            threading.Thread(target=writer, args=(t * 1000,))
            for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        seen = sorted(r["n"] for r in read_records(tmp_path / "j"))
        assert len(seen) == 4 * per_thread == len(set(seen))


def test_read_records_kind_filter(tmp_path):
    journal = TelemetryJournal(tmp_path / "j")
    journal.append(_note(0))
    journal.append(request_record("ok", request_id="r1"))
    journal.close()
    kinds = [r["kind"] for r in read_records(tmp_path / "j")]
    assert kinds == ["note", "request"]
    only = list(read_records(tmp_path / "j", kinds=("request",)))
    assert len(only) == 1 and only[0]["request_id"] == "r1"


def test_shard_lines_are_canonical_json(tmp_path):
    """Each line re-parses and re-checksums from the raw bytes alone."""
    journal = TelemetryJournal(tmp_path / "j")
    journal.append(request_record("busy", shed_reason="overload"))
    journal.close()
    path = journal_shards(tmp_path / "j")[0][0]
    for raw in open(path, "rb"):
        record = json.loads(raw)
        assert check_record(record)
        assert validate_record(record) == []
