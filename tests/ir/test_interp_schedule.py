"""Interpreting Schedules (cycle/slot execution order, collapse handling)."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.interp import Interpreter, initial_registers
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.ir.registers import reg
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import Schedule


def _baseline(fn):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return ListScheduler().schedule(fn, ddg)


def test_schedule_matches_function(diamond_fn):
    schedule = _baseline(diamond_fn)
    interp = Interpreter()
    registers = initial_registers(diamond_fn, 5)
    want = interp.run_function(diamond_fn, registers, seed=5)
    got = interp.run_schedule(schedule, diamond_fn, registers, seed=5)
    assert got.block_trace == want.block_trace
    assert got.live_out_state(diamond_fn) == want.live_out_state(diamond_fn)
    assert got.memory == want.memory


def test_collapsed_block_follows_branch_target():
    fn = parse_function("""
.proc hop
.livein r32
.liveout r8
.block A freq=1
  add r8 = r32, 1
.block B freq=1
  br D
.block C freq=1
  add r8 = r32, 99
.block D freq=1
  br.ret b0
.endp
""")
    # A schedule that empties B entirely (its br is dropped): execution
    # must still skip C by following B's original target D.
    schedule = Schedule([b.name for b in fn.blocks])
    add = fn.block("A").instructions[0]
    ret = fn.block("D").instructions[0]
    schedule.place(add, "A", 1)
    schedule.place(ret, "D", 1)
    result = Interpreter().run_schedule(schedule, fn, {reg("r32"): 1})
    assert result.register("r8") == 2
    assert "C" not in result.block_trace
    assert result.returned


def test_speculative_copy_does_not_change_state(diamond_fn):
    """An extra (speculative) exclusive-dest copy on the untaken path must
    leave live-outs and memory untouched."""
    schedule = _baseline(diamond_fn)
    load = next(i for i in diamond_fn.block("B").instructions if i.is_load)
    spec = load.copy(mnemonic="ld8.s")
    schedule.place(spec, "A", 1)
    interp = Interpreter()
    registers = initial_registers(diamond_fn, 2)
    want = interp.run_function(diamond_fn, registers, seed=2)
    got = interp.run_schedule(schedule, diamond_fn, registers, seed=2)
    assert got.live_out_state(diamond_fn) == want.live_out_state(diamond_fn)
    assert got.memory == want.memory


def test_check_is_noop(straight_fn):
    schedule = _baseline(straight_fn)
    from repro.ir.parser import parse_instruction

    schedule.place(parse_instruction("chk.s r10, rec_x"), "A", 1)
    result = Interpreter().run_schedule(
        schedule, straight_fn, initial_registers(straight_fn, 0)
    )
    assert result.returned
