"""Dependence graph construction."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import DepKind, build_dependence_graph
from repro.ir.liveness import compute_liveness


def _graph(fn):
    cfg = CfgInfo(fn)
    return build_dependence_graph(fn, cfg, compute_liveness(fn)), cfg


def _edges_between(graph, src_mnemonic, dst_mnemonic):
    return [
        e
        for e in graph.edges
        if e.src.mnemonic.startswith(src_mnemonic)
        and e.dst.mnemonic.startswith(dst_mnemonic)
    ]


def test_true_dep_latency(diamond_fn):
    graph, _ = _graph(diamond_fn)
    load_edges = _edges_between(graph, "ld8", "add")
    assert load_edges and all(e.latency == 2 for e in load_edges)


def test_cmp_to_branch_zero_latency(diamond_fn):
    graph, _ = _graph(diamond_fn)
    edges = _edges_between(graph, "cmp", "br.cond")
    assert edges and edges[0].latency == 0
    assert edges[0].kind is DepKind.TRUE


def test_cross_block_true_dep(diamond_fn):
    graph, _ = _graph(diamond_fn)
    # add r14 (A) -> ld8 (B)
    edges = _edges_between(graph, "add", "ld8")
    assert any(e.kind is DepKind.TRUE for e in edges)


def test_memory_anti_edge(diamond_fn):
    graph, _ = _graph(diamond_fn)
    edges = _edges_between(graph, "ld8", "st8")
    assert any(e.kind is DepKind.MEM_ANTI for e in edges)


def test_two_loads_never_conflict(straight_fn):
    graph, _ = _graph(straight_fn)
    assert not any(
        e.kind.is_memory and e.src.is_load and e.dst.is_load for e in graph.edges
    )


def test_loop_carried_true_dep_not_forward(loop_fn):
    """Backedge-carried reaching defs must not create forward edges."""
    graph, _ = _graph(loop_fn)
    loop_block = loop_fn.block("LOOP")
    load = loop_block.instructions[0]
    update = loop_block.instructions[2]  # adds r15 = 8, r15 (later)
    assert not any(
        e.src is update and e.dst is load and e.kind is DepKind.TRUE
        for e in graph.edges
    )
    # ...but the protecting anti edge load -> update exists.
    assert any(
        e.src is load and e.dst is update and e.kind is DepKind.ANTI
        for e in graph.edges
    )


def test_output_dep_between_double_defs():
    from repro.ir.parser import parse_function

    text = """
.proc outdep
.liveout r5
.block A freq=1
  add r5 = r32, r32
  add r5 = r5, 1
  br.ret b0
.endp
"""
    graph, _ = _graph(parse_function(text))
    assert any(e.kind is DepKind.OUTPUT and e.latency == 1 for e in graph.edges)


def test_alias_classes_suppress_memory_edges():
    from repro.ir.parser import parse_function

    text = """
.proc disjoint
.livein r32, r33
.block A freq=1
  st8 [r32] = r33 cls=stack
  ld8 r5 = [r33] cls=heap
  br.ret b0
.endp
"""
    graph, _ = _graph(parse_function(text))
    mem = [e for e in graph.edges if e.kind.is_memory]
    # ANSI-distinct classes keep the edge but mark it data-speculable.
    assert mem and all(e.data_speculable for e in mem)


def test_same_base_disjoint_offsets_no_edge():
    from repro.ir.parser import parse_function

    text = """
.proc offsets
.livein r32, r33
.block A freq=1
  st8 [r32] = r33
  ld8 r5 = [r32+8]
  br.ret b0
.endp
"""
    graph, _ = _graph(parse_function(text))
    assert not any(e.kind.is_memory for e in graph.edges)


def test_call_orders_memory():
    from repro.ir.parser import parse_function

    text = """
.proc callsite
.livein r32, r33
.block A freq=1
  st8 [r32] = r33
  br.call helper
  ld8 r5 = [r32]
  br.ret b0
.endp
"""
    graph, _ = _graph(parse_function(text))
    call_edges = [e for e in graph.edges if e.kind is DepKind.CALL]
    assert len(call_edges) >= 2


def test_has_path_transitive(diamond_fn):
    graph, _ = _graph(diamond_fn)
    block_a = diamond_fn.block("A")
    block_b = diamond_fn.block("B")
    add14 = block_a.instructions[0]
    add8 = block_b.instructions[2]
    assert graph.has_path(add14, add8)
    assert not graph.has_path(add8, add14)
