"""Graphviz exporters."""

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.dot import cfg_to_dot, ddg_to_dot, schedule_to_dot
from repro.ir.liveness import compute_liveness
from repro.sched.list_scheduler import ListScheduler


def test_cfg_dot_structure(loop_fn):
    cfg = CfgInfo(loop_fn)
    text = cfg_to_dot(loop_fn, cfg)
    assert text.startswith("digraph")
    assert '"PRE" -> "LOOP"' in text
    assert "style=dashed" in text  # the back edge


def test_ddg_dot_kinds(diamond_fn):
    cfg = CfgInfo(diamond_fn)
    ddg = build_dependence_graph(diamond_fn, cfg, compute_liveness(diamond_fn))
    text = ddg_to_dot(diamond_fn, ddg)
    assert "->" in text and "label=" in text
    assert text.count("n") >= diamond_fn.instruction_count


def test_schedule_dot_tables(diamond_fn):
    cfg = CfgInfo(diamond_fn)
    ddg = build_dependence_graph(diamond_fn, cfg, compute_liveness(diamond_fn))
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    text = schedule_to_dot(diamond_fn, schedule)
    assert "<table" in text
    assert "[1]" in text
