"""TIA parser."""

import pytest

from repro.errors import ParseError
from repro.ir.parser import parse_function, parse_instruction
from repro.ir.registers import reg


def test_diamond_structure(diamond_fn):
    assert [b.name for b in diamond_fn.blocks] == ["A", "B", "C"]
    assert diamond_fn.entry_blocks == ["A"]
    assert diamond_fn.exit_blocks == ["C"]
    assert set(diamond_fn.successors("A")) == {"B", "C"}
    assert diamond_fn.successors("B") == ["C"]


def test_livein_liveout(diamond_fn):
    assert reg("r32") in diamond_fn.live_in
    assert diamond_fn.live_out == {reg("r8")}


def test_load_operands():
    instr = parse_instruction("ld8 r15 = [r14+16] cls=heap")
    assert instr.dests == [reg("r15")]
    assert instr.mem.base == reg("r14")
    assert instr.mem.offset == 16
    assert instr.mem.alias_class == "heap"
    assert reg("r14") in instr.srcs


def test_store_operands():
    instr = parse_instruction("st8 [r6] = r5")
    assert instr.dests == []
    assert instr.mem.base == reg("r6")
    assert set(instr.srcs) == {reg("r5"), reg("r6")}


def test_predicated_branch():
    instr = parse_instruction("(p6) br.cond LOOP")
    assert instr.pred == reg("p6")
    assert instr.target == "LOOP"
    assert instr.is_branch


def test_compare_with_two_dests():
    instr = parse_instruction("cmp.eq p6, p7 = r3, r0")
    assert instr.dests == [reg("p6"), reg("p7")]
    assert instr.srcs == [reg("r3"), reg("r0")]


def test_immediates():
    instr = parse_instruction("adds r5 = -12, r6")
    assert instr.imms == [-12]
    assert instr.srcs == [reg("r6")]


def test_annotations():
    instr = parse_instruction("ld8 r5 = [r6] cls=heap lat=3 miss=0.5")
    assert instr.annotations["lat"] == "3"
    assert instr.latency == 3
    assert float(instr.annotations["miss"]) == 0.5


def test_chk_with_recovery_label():
    instr = parse_instruction("chk.s r5, recover_1")
    assert instr.srcs == [reg("r5")]
    assert instr.target == "recover_1"
    assert instr.is_check


def test_branch_needs_target():
    with pytest.raises(ParseError):
        parse_instruction("br.cond")


def test_unknown_directive_rejected():
    with pytest.raises(ParseError):
        parse_function(".proc f\n.wat x\n.endp")


def test_unterminated_proc_rejected():
    with pytest.raises(ParseError):
        parse_function(".proc f\n.block A\nadd r1 = r2, r3\n")


def test_instruction_outside_block_rejected():
    with pytest.raises(ParseError):
        parse_function(".proc f\nadd r1 = r2, r3\n.endp")


def test_branch_to_unknown_block_rejected():
    bad = """
.proc f
.block A freq=1
  br NOWHERE
.endp
"""
    with pytest.raises(ParseError):
        parse_function(bad)


def test_succ_annotation_sets_probabilities(loop_fn):
    edge = next(e for e in loop_fn.edges if e.src == "LOOP" and e.dst == "LOOP")
    assert edge.prob == pytest.approx(0.9)


def test_succ_annotation_on_non_successor_rejected():
    bad = """
.proc f
.block A freq=1 succ=B:0.5
  br.ret b0
.block B freq=1
  br.ret b0
.endp
"""
    with pytest.raises(ParseError):
        parse_function(bad)


def test_comments_and_blank_lines():
    text = """
// leading comment
.proc f
.block A freq=1  # trailing comment
  add r1 = r2, r3   // comment
  br.ret b0
.endp
"""
    fn = parse_function(text)
    assert fn.instruction_count == 2


def test_fall_through_edge_created():
    text = """
.proc f
.block A freq=1
  add r1 = r2, r3
.block B freq=1
  br.ret b0
.endp
"""
    fn = parse_function(text)
    assert fn.successors("A") == ["B"]
