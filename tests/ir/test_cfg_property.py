"""Property tests: CFG analyses cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.cfg import CfgInfo
from repro.workloads.generator import RoutineSpec, generate_routine


def _generated(seed, blocks=9, loops=1):
    spec = RoutineSpec(
        name="cfgprop", seed=seed, instructions=25, blocks=blocks, loops=loops
    )
    return generate_routine(spec)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_dominators_match_networkx(seed):
    fn = _generated(seed)
    cfg = CfgInfo(fn)
    graph = nx.DiGraph()
    graph.add_nodes_from(b.name for b in fn.blocks)
    graph.add_edges_from((e.src, e.dst) for e in fn.edges)
    entry = fn.entry_blocks[0]
    graph.add_edge("__entry__", entry)
    idom = nx.immediate_dominators(graph, "__entry__")
    for block in fn.blocks:
        if block.name not in idom:
            continue  # unreachable
        expected = idom[block.name]
        ours = cfg.idom[block.name]
        if expected in ("__entry__", block.name):
            assert ours is None
        else:
            assert ours == expected


@given(seed=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_forward_graph_is_acyclic(seed):
    fn = _generated(seed, loops=2)
    cfg = CfgInfo(fn)
    graph = nx.DiGraph()
    graph.add_nodes_from(cfg.block_names)
    for src in cfg.block_names:
        for dst in cfg.successors_in_dag(src):
            graph.add_edge(src, dst)
    assert nx.is_directed_acyclic_graph(graph)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_reaches_matches_networkx_reachability(seed):
    fn = _generated(seed)
    cfg = CfgInfo(fn)
    graph = nx.DiGraph()
    graph.add_nodes_from(cfg.block_names)
    for src in cfg.block_names:
        for dst in cfg.successors_in_dag(src):
            graph.add_edge(src, dst)
    closure = {n: set(nx.descendants(graph, n)) for n in graph.nodes}
    for src in cfg.block_names:
        for dst in cfg.block_names:
            if src == dst:
                continue
            assert cfg.reaches(src, dst) == (dst in closure[src])


@given(seed=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_loops_cover_all_back_edges(seed):
    fn = _generated(seed, loops=2)
    cfg = CfgInfo(fn)
    natural = {
        (src, dst) for (src, dst) in cfg.back_edges if cfg.dominates(dst, src)
    }
    latch_pairs = {
        (latch, loop.header) for loop in cfg.loops for latch in loop.latches
    }
    assert natural == latch_pairs
