"""Printer and round-trip properties."""

from hypothesis import given, settings, strategies as st

from repro.ir.parser import parse_function, parse_instruction
from repro.ir.printer import format_function, format_instruction
from repro.workloads.generator import RoutineSpec, generate_routine


def test_instruction_formats():
    cases = [
        "add r1 = r2, r3",
        "ld8 r15 = [r14+16] cls=heap",
        "st8 [r6] = r5",
        "(p6) br.cond LOOP",
        "cmp.eq p6, p7 = r3, r0",
        "adds r5 = -12, r6",
        "chk.s r5, recover_1",
        "br.ret b0",
        "movl r9 = 123456",
    ]
    for text in cases:
        instr = parse_instruction(text)
        reparsed = parse_instruction(format_instruction(instr))
        assert format_instruction(reparsed) == format_instruction(instr)


def test_function_roundtrip(diamond_fn):
    text = format_function(diamond_fn)
    fn2 = parse_function(text)
    assert format_function(fn2) == text
    assert fn2.instruction_count == diamond_fn.instruction_count
    assert [b.name for b in fn2.blocks] == [b.name for b in diamond_fn.blocks]


@given(
    seed=st.integers(0, 10**6),
    instructions=st.integers(10, 60),
    blocks=st.integers(4, 12),
    loops=st.integers(0, 2),
)
@settings(max_examples=25, deadline=None)
def test_generated_routines_roundtrip(seed, instructions, blocks, loops):
    """Print→parse→print is a fixpoint for arbitrary generated routines."""
    spec = RoutineSpec(
        name="prop",
        seed=seed,
        instructions=instructions,
        blocks=blocks,
        loops=loops,
    )
    fn = generate_routine(spec)
    text = format_function(fn)
    fn2 = parse_function(text)
    assert format_function(fn2) == text
    assert fn2.instruction_count == fn.instruction_count
    assert {(e.src, e.dst) for e in fn2.edges} == {
        (e.src, e.dst) for e in fn.edges
    }
