"""Register renaming."""

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import DepKind, build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.ir.registers import reg
from repro.ir.rename import rename_registers


def test_false_dependence_removed():
    text = """
.proc reuse
.livein r32, r33
.liveout r8
.block A freq=1
  add r5 = r32, r33
  add r6 = r5, r32
  add r5 = r33, 1
  add r8 = r5, r6
  br.ret b0
.endp
"""
    fn = parse_function(text)
    stats = rename_registers(fn)
    assert stats.renamed >= 1
    # After renaming, the two r5 webs use distinct registers.
    block = fn.block("A")
    first_def = block.instructions[0].dests[0]
    second_def = block.instructions[2].dests[0]
    assert first_def != second_def
    # Uses follow their webs.
    assert block.instructions[1].srcs[0] == first_def
    assert block.instructions[3].srcs[0] == second_def
    # And the DDG has no anti/output edges on those registers anymore.
    graph = build_dependence_graph(fn, CfgInfo(fn), compute_liveness(fn))
    assert not any(e.kind.is_false_dep for e in graph.edges)


def test_liveout_webs_keep_their_register():
    text = """
.proc keepout
.livein r32
.liveout r8
.block A freq=1
  add r8 = r32, 1
  add r8 = r8, 2
  br.ret b0
.endp
"""
    fn = parse_function(text)
    rename_registers(fn)
    # The def reaching the exit still writes r8.
    last = fn.block("A").instructions[1]
    assert last.dests == [reg("r8")]


def test_livein_merge_pins_web():
    text = """
.proc pinin
.livein r32, r40
.liveout r8
.block A freq=1
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond C
.block B freq=1
  add r40 = r32, 1
.block C freq=1
  add r8 = r40, r32
  br.ret b0
.endp
"""
    fn = parse_function(text)
    rename_registers(fn)
    # The use in C can see both the live-in r40 and B's def: the def must
    # keep writing r40.
    assert fn.block("B").instructions[0].dests == [reg("r40")]


def test_memory_base_rewritten():
    text = """
.proc membase
.livein r32, r33
.liveout r8
.block A freq=1
  add r5 = r32, r33
  ld8 r6 = [r5]
  add r5 = r33, 4
  ld8 r7 = [r5]
  add r8 = r6, r7
  br.ret b0
.endp
"""
    fn = parse_function(text)
    stats = rename_registers(fn)
    assert stats.renamed >= 1
    block = fn.block("A")
    assert block.instructions[1].mem.base == block.instructions[0].dests[0]
    assert block.instructions[3].mem.base == block.instructions[2].dests[0]


def test_single_def_web_untouched(diamond_fn):
    before = [i.dests[:] for i in diamond_fn.all_instructions()]
    stats = rename_registers(diamond_fn)
    after = [i.dests[:] for i in diamond_fn.all_instructions()]
    assert before == after
    assert stats.renamed == 0
