"""Liveness and reaching definitions."""

from repro.ir.cfg import CfgInfo
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.registers import reg


def test_live_out_propagates_backwards(diamond_fn):
    live = compute_liveness(diamond_fn)
    # r8 is routine-live-out and stored in C, so it is live out of B.
    assert reg("r8") in live.live_out["B"]
    # r14 is used in B (address) so live out of A.
    assert reg("r14") in live.live_out["A"]


def test_block_local_def_not_live_in(diamond_fn):
    live = compute_liveness(diamond_fn)
    assert reg("r15") not in live.live_in["B"]
    assert reg("r16") not in live.live_in["B"]


def test_reaching_defs_link_uses(diamond_fn):
    live = compute_liveness(diamond_fn)
    block_b = diamond_fn.block("B")
    load, add16, add8 = block_b.instructions
    defs = live.reaching_uses[add16][reg("r15")]
    assert defs == {load}
    defs8 = live.reaching_uses[add8][reg("r16")]
    assert defs8 == {add16}


def test_entry_def_sentinel_for_livein(diamond_fn):
    live = compute_liveness(diamond_fn)
    add14 = diamond_fn.block("A").instructions[0]
    defs = live.reaching_uses[add14][reg("r32")]
    assert LivenessInfo.ENTRY_DEF in defs


def test_defs_reaching_exit(diamond_fn):
    live = compute_liveness(diamond_fn)
    add8 = diamond_fn.block("B").instructions[2]
    assert (add8, reg("r8")) in live.defs_reaching_exit


def test_loop_carried_reaching_defs(loop_fn):
    live = compute_liveness(loop_fn)
    loop_block = loop_fn.block("LOOP")
    load = loop_block.instructions[0]  # ld8 r21 = [r15]
    update = loop_block.instructions[2]  # adds r15 = 8, r15
    pre = loop_fn.block("PRE").instructions[0]
    defs = live.reaching_uses[load][reg("r15")]
    assert pre in defs
    assert update in defs  # via the back edge


def test_predicated_def_does_not_kill():
    from repro.ir.parser import parse_function

    text = """
.proc predk
.livein r32
.liveout r8
.block A freq=1
  add r5 = r32, r32
  cmp.eq p6, p7 = r32, r0
  (p6) add r5 = r32, 1
  add r8 = r5, r32
  br.ret b0
.endp
"""
    fn = parse_function(text)
    live = compute_liveness(fn)
    block = fn.block("A")
    use = block.instructions[3]
    defs = live.reaching_uses[use][reg("r5")]
    assert len(defs) == 2  # both the plain and the predicated definition
