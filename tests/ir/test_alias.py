"""Alias oracle."""

from repro.ir.alias import AliasVerdict, classify_alias, data_spec_candidate, must_order
from repro.ir.instruction import MemRef
from repro.ir.registers import reg


def _ref(base, offset=0, cls=None, size=8):
    return MemRef(reg(base), offset, cls, size)


def test_same_base_overlapping():
    assert classify_alias(_ref("r5"), _ref("r5")) is AliasVerdict.MAY
    assert classify_alias(_ref("r5", 0), _ref("r5", 4)) is AliasVerdict.MAY


def test_same_base_disjoint():
    assert classify_alias(_ref("r5", 0), _ref("r5", 8)) is AliasVerdict.NO
    assert not must_order(_ref("r5", 0), _ref("r5", 8))


def test_ansi_distinct_classes():
    verdict = classify_alias(_ref("r5", cls="heap"), _ref("r6", cls="stack"))
    assert verdict is AliasVerdict.ANSI_DISTINCT
    # Still ordered conservatively, but a data-speculation candidate.
    assert must_order(_ref("r5", cls="heap"), _ref("r6", cls="stack"))
    assert data_spec_candidate(_ref("r5", cls="heap"), _ref("r6", cls="stack"))


def test_unknown_classes_may_alias():
    assert classify_alias(_ref("r5"), _ref("r6")) is AliasVerdict.MAY
    assert classify_alias(_ref("r5", cls="heap"), _ref("r6")) is AliasVerdict.MAY
    assert not data_spec_candidate(_ref("r5"), _ref("r6"))


def test_same_class_may_alias():
    assert (
        classify_alias(_ref("r5", cls="heap"), _ref("r6", cls="heap"))
        is AliasVerdict.MAY
    )


def test_none_refs_are_conservative():
    assert classify_alias(None, _ref("r5")) is AliasVerdict.MAY


def test_size_matters_for_offset_disjointness():
    small = MemRef(reg("r5"), 0, None, 4)
    next_word = MemRef(reg("r5"), 4, None, 4)
    assert classify_alias(small, next_word) is AliasVerdict.NO
