"""Concrete interpreter semantics."""

import pytest

from repro.ir.interp import Interpreter, initial_registers
from repro.ir.parser import parse_function
from repro.ir.registers import reg


def test_arithmetic_and_return():
    fn = parse_function("""
.proc arith
.livein r32, r33
.liveout r8
.block A freq=1
  add r8 = r32, r33
  br.ret b0
.endp
""")
    interp = Interpreter()
    state = {reg("r32"): 5, reg("r33"): 7}
    result = interp.run_function(fn, state)
    assert result.returned
    assert result.register("r8") == 12


def test_branches_follow_predicates():
    fn = parse_function("""
.proc branching
.livein r32
.liveout r8
.block A freq=1
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond ZERO
.block NONZERO freq=1
  mov r8 = 1
  br DONE
.block ZERO freq=1
  mov r8 = 2
.block DONE freq=1
  br.ret b0
.endp
""")
    interp = Interpreter()
    taken = interp.run_function(fn, {reg("r32"): 0})
    assert taken.register("r8") == 2
    assert "ZERO" in taken.block_trace and "NONZERO" not in taken.block_trace
    fallthrough = interp.run_function(fn, {reg("r32"): 3})
    assert fallthrough.register("r8") == 1


def test_memory_round_trip():
    fn = parse_function("""
.proc memrt
.livein r32, r33
.liveout r8
.block A freq=1
  st8 [r32+8] = r33
  ld8 r8 = [r32+8]
  br.ret b0
.endp
""")
    result = Interpreter().run_function(fn, {reg("r32"): 1000, reg("r33"): 99})
    assert result.register("r8") == 99


def test_loop_terminates_on_counter():
    fn = parse_function("""
.proc counter
.livein r32
.liveout r8
.block PRE freq=1
  mov r10 = 0
  mov r8 = 0
.block LOOP freq=8 succ=LOOP:0.9,POST:0.1
  adds r10 = 1, r10
  add r8 = r8, r10
  cmp.lt p6, p7 = r10, r32
  (p6) br.cond LOOP
.block POST freq=1
  br.ret b0
.endp
""")
    result = Interpreter().run_function(fn, {reg("r32"): 5})
    assert result.returned
    assert result.register("r8") == 1 + 2 + 3 + 4 + 5
    assert result.block_trace.count("LOOP") == 5


def test_predicated_skip():
    fn = parse_function("""
.proc predskip
.livein r32
.liveout r8
.block A freq=1
  cmp.eq p6, p7 = r32, r0
  mov r8 = 1
  (p6) mov r8 = 2
  br.ret b0
.endp
""")
    assert Interpreter().run_function(fn, {reg("r32"): 0}).register("r8") == 2
    assert Interpreter().run_function(fn, {reg("r32"): 9}).register("r8") == 1


def test_uninterpreted_ops_deterministic():
    fn = parse_function("""
.proc hashed
.livein r32
.liveout r8
.block A freq=1
  xor r5 = r32, r32
  shl r8 = r5, 3
  br.ret b0
.endp
""")
    interp = Interpreter()
    a = interp.run_function(fn, {reg("r32"): 42}).register("r8")
    b = interp.run_function(fn, {reg("r32"): 42}).register("r8")
    c = interp.run_function(fn, {reg("r32"): 43}).register("r8")
    assert a == b
    assert a != c


def test_initial_registers_deterministic(diamond_fn):
    assert initial_registers(diamond_fn, 3) == initial_registers(diamond_fn, 3)
    assert initial_registers(diamond_fn, 3) != initial_registers(diamond_fn, 4)


def test_block_budget_bounds_infinite_loops():
    fn = parse_function("""
.proc forever
.livein r32
.liveout r8
.block LOOP freq=1 succ=LOOP:1.0
  add r8 = r8, r32
  br LOOP
.endp
""")
    result = Interpreter(max_blocks=37).run_function(fn, {reg("r32"): 1})
    assert not result.returned
    assert len(result.block_trace) == 37
