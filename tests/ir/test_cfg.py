"""Dominators, postdominators, loops, DAG facts."""

from repro.ir.cfg import CfgInfo


def test_dominators_diamond(diamond_fn):
    cfg = CfgInfo(diamond_fn)
    assert cfg.dominates("A", "B")
    assert cfg.dominates("A", "C")
    assert not cfg.dominates("B", "C")
    assert cfg.dominates("A", "A")


def test_postdominators_diamond(diamond_fn):
    cfg = CfgInfo(diamond_fn)
    assert cfg.postdominates("C", "A")
    assert cfg.postdominates("C", "B")
    assert not cfg.postdominates("B", "A")


def test_reaches_is_irreflexive_forward(diamond_fn):
    cfg = CfgInfo(diamond_fn)
    assert cfg.reaches("A", "C")
    assert not cfg.reaches("C", "A")
    assert not cfg.reaches("A", "A")


def test_loop_detection(loop_fn):
    cfg = CfgInfo(loop_fn)
    assert len(cfg.loops) == 1
    loop = cfg.loops[0]
    assert loop.header == "LOOP"
    assert loop.blocks == {"LOOP"}
    assert loop.latches == {"LOOP"}
    assert cfg.innermost_loop("LOOP") is loop
    assert cfg.innermost_loop("PRE") is None


def test_back_edges_removed_from_dag(loop_fn):
    cfg = CfgInfo(loop_fn)
    assert ("LOOP", "LOOP") in cfg.back_edges
    assert "LOOP" not in cfg.successors_in_dag("LOOP")
    assert cfg.topo_order.index("PRE") < cfg.topo_order.index("LOOP")


def test_dag_sinks(loop_fn, diamond_fn):
    assert CfgInfo(loop_fn).dag_sinks == ["POST"]
    assert CfgInfo(diamond_fn).dag_sinks == ["C"]


def test_latch_is_sink_when_body_block_exists():
    from repro.ir.parser import parse_function

    text = """
.proc two_block_loop
.block H freq=100
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond E
.block BODY freq=90
  add r5 = r6, r7
  br H
.block E freq=10
  br.ret b0
.endp
"""
    fn = parse_function(text)
    cfg = CfgInfo(fn)
    loop = cfg.loops[0]
    assert loop.header == "H"
    assert loop.blocks == {"H", "BODY"}
    assert loop.latches == {"BODY"}
    assert "BODY" in cfg.dag_sinks


def test_nested_loops():
    from repro.ir.parser import parse_function

    text = """
.proc nested
.block H1 freq=10
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond OUT
.block H2 freq=100
  cmp.lt p8, p9 = r33, r0
  (p8) br.cond H1T
.block B2 freq=90
  add r5 = r6, r7
  br H2
.block H1T freq=10
  br H1
.block OUT freq=1
  br.ret b0
.endp
"""
    fn = parse_function(text)
    cfg = CfgInfo(fn)
    assert len(cfg.loops) == 2
    inner = cfg.loop_with_header("H2")
    outer = cfg.loop_with_header("H1")
    assert inner.parent is outer
    assert inner.depth == 2 and outer.depth == 1
    assert cfg.innermost_loop("B2") is inner


def test_control_equivalence(diamond_fn):
    cfg = CfgInfo(diamond_fn)
    assert cfg.control_equivalent("A", "C")
    assert not cfg.control_equivalent("A", "B")
