"""Register model."""

import pytest

from repro.errors import ParseError
from repro.ir.registers import (
    Register,
    RegisterBank,
    fresh_register_allocator,
    reg,
)


def test_parse_and_intern():
    assert reg("r13") is reg("r13")
    assert reg("p6").bank is RegisterBank.PR
    assert reg("b0").bank is RegisterBank.BR
    assert reg("f82").index == 82


def test_range_checks():
    with pytest.raises(ParseError):
        reg("r128")
    with pytest.raises(ParseError):
        reg("p64")
    with pytest.raises(ParseError):
        reg("b8")


def test_malformed_names():
    for bad in ("x3", "r", "r3a", ""):
        with pytest.raises(ParseError):
            reg(bad)


def test_constant_registers():
    assert reg("r0").is_zero and reg("r0").is_constant
    assert reg("p0").is_true_predicate
    assert not reg("r1").is_constant


def test_fresh_allocator_skips_used():
    used = {reg("r1"), reg("r2"), reg("f1")}
    allocator = fresh_register_allocator(used, RegisterBank.GR)
    first = next(allocator)
    assert first == reg("r3")
    assert next(allocator) == reg("r4")


def test_fresh_allocator_exhausts():
    used = {Register(RegisterBank.BR, i) for i in range(1, 8)}
    allocator = fresh_register_allocator(used, RegisterBank.BR)
    with pytest.raises(StopIteration):
        next(allocator)


def test_ordering_is_stable():
    regs = sorted([reg("r5"), reg("r3"), reg("f1")])
    assert regs[0].bank is RegisterBank.FR or regs[0].index <= regs[1].index
