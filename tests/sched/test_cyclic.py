"""Cyclic code motion (Sec. 5.2)."""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.samples import fig5_cyclic_sample


@pytest.fixture(scope="module")
def fig5_with():
    fn = parse_function(fig5_cyclic_sample())
    return optimize_function(fn, ScheduleFeatures(time_limit=60))


@pytest.fixture(scope="module")
def fig5_without():
    fn = parse_function(fig5_cyclic_sample())
    return optimize_function(fn, ScheduleFeatures(time_limit=60, cyclic=False))


def test_cyclic_improves_loop(fig5_with, fig5_without):
    assert fig5_with.verification.ok
    assert fig5_without.verification.ok
    assert fig5_with.weighted_length_out < fig5_without.weighted_length_out


def test_latch_copy_present(fig5_with):
    schedule = fig5_with.output_schedule
    loop_len = schedule.block_length("LOOP")
    # The cyclically moved add r20 sits both above the loop and in the
    # final (latch) cycle of the loop body.
    def copies(block):
        return [
            p
            for p in schedule.placements()
            if p.block == block
            and p.instr.mnemonic == "add"
            and not p.instr.is_branch
        ]

    pre_mnemonics = [p.instr.mnemonic for p in copies("PRE")]
    assert "add" in pre_mnemonics
    last_group = schedule.group("LOOP", loop_len)
    assert any(i.mnemonic == "add" for i in last_group)


def test_loop_variant_never_escapes_without_latch_copy(fig5_without):
    """With cyclic off, the address add must stay inside the loop."""
    schedule = fig5_without.output_schedule
    fn = fig5_without.fn
    loop_instrs = list(schedule.instructions_in("LOOP"))
    # The load's address producer is in the loop.
    loads = [i for i in loop_instrs if i.is_load]
    assert loads, "load must remain in the loop"
    base = loads[0].mem.base
    producers = [
        i for i in loop_instrs if base in i.regs_written() and not i.is_load
    ]
    assert producers, "address producer must stay in the loop without cyclic"


def test_cyclic_requires_multiply_executable():
    # Self-overlapping update (adds r15 = 8, r15) is not multiply
    # executable; the loop cannot be shortened by moving it cyclically.
    text = """
.proc selfinc
.livein r32
.liveout r8
.block PRE freq=1
  add r15 = r32, 0
.block LOOP freq=100 succ=LOOP:0.9,POST:0.1
  adds r15 = 8, r15
  cmp.ne p6, p7 = r15, r0
  (p6) br.cond LOOP
.block POST freq=1
  add r8 = r15, 0
  br.ret b0
.endp
"""
    fn = parse_function(text)
    res = optimize_function(fn, ScheduleFeatures(time_limit=30))
    assert res.verification.ok
    # The update stays put.
    placements = [
        p for p in res.output_schedule.placements() if p.instr.mnemonic == "adds"
    ]
    assert placements and all(p.block == "LOOP" for p in placements)
