"""Software pipelining through the full scheduler (`ScheduleFeatures.swp`).

The ladder itself is covered in test_modulo.py; these tests pin the
integration contract: opt-in via features, per-loop outcomes on the
result, report/trace surfacing, and the §8 no-raise guarantee under
``swp.materialize`` chaos.
"""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.tools import faults

COUNTED = """
.proc swpint
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r15 = r32, 0
  mov r9 = 0
.block LOOP freq=130 succ=LOOP:0.92,POST:0.08
  ld8 r21 = [r15+0] cls=heap
  xor r23 = r21, r33
  st8 [r33+8] = r23 cls=glob
  adds r15 = 8, r15
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, 6
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r23, 0
  br.ret b0
.endp
"""


def test_swp_off_by_default():
    result = optimize_function(
        parse_function(COUNTED), ScheduleFeatures(time_limit=30)
    )
    assert result.swp_outcomes == []
    assert "swp LOOP" not in result.report()


def test_swp_outcomes_and_report():
    result = optimize_function(
        parse_function(COUNTED), ScheduleFeatures(time_limit=60, swp=True)
    )
    assert len(result.swp_outcomes) == 1
    outcome = result.swp_outcomes[0]
    assert outcome.loop_header == "LOOP"
    assert outcome.pipelined
    assert outcome.ii >= outcome.mii
    assert outcome.oracle and outcome.oracle.ok
    assert "swp LOOP: pipelined II=" in result.report()
    # The acyclic schedule itself is untouched by the SWP post-step.
    assert result.verification.ok


def test_swp_chaos_never_raises():
    with faults.inject("swp.materialize=error"):
        result = optimize_function(
            parse_function(COUNTED), ScheduleFeatures(time_limit=60, swp=True)
        )
    assert len(result.swp_outcomes) == 1
    assert result.swp_outcomes[0].status == "unpipelined"


def test_swp_feature_validation():
    with pytest.raises(ValueError):
        ScheduleFeatures(swp_max_ii=0)
    with pytest.raises(ValueError):
        ScheduleFeatures(swp_max_stages=0)
