"""Property tests: the optimizer's core invariants on random routines.

For any generated routine the ILP postpass must produce a schedule that

* the path-based verifier accepts (correctness, Theorem 1),
* is no longer (weighted) than the heuristic input (optimality direction),
* keeps every cycle dispersal-feasible and bundleable.

These run on small routines so the whole sweep stays in seconds.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.generator import RoutineSpec, generate_routine

FEATURES = ScheduleFeatures(time_limit=25, max_hops=3)


@given(seed=st.integers(0, 10**6))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_optimizer_invariants_random_routines(seed):
    spec = RoutineSpec(
        name="prop",
        seed=seed,
        instructions=24,
        blocks=6,
        loops=1,
        input_spec_loads=1,
    )
    fn = generate_routine(spec)
    result = optimize_function(fn, FEATURES)

    assert result.verification.ok, result.verification.problems[:3]
    assert (
        result.weighted_length_out <= result.weighted_length_in + 1e-9
    )
    # Bundling succeeded for every block (exception-free) and no group
    # overflows the machine (verifier already checked, double-check count).
    assert result.bundles_out.total_bundles >= 1


@given(seed=st.integers(0, 10**5))
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_feature_monotonicity(seed):
    """Enabling extensions never makes the optimum worse."""
    spec = RoutineSpec(
        name="mono", seed=seed, instructions=18, blocks=5, loops=1
    )
    fn = generate_routine(spec)
    base = optimize_function(
        fn,
        ScheduleFeatures(
            time_limit=25,
            max_hops=3,
            speculation=False,
            data_speculation=False,
            cyclic=False,
            partial_ready=False,
        ),
    )
    full = optimize_function(fn, FEATURES)
    assert full.weighted_length_out <= base.weighted_length_out + 1e-9
