"""Materialization scope gating: unfit loops return None, never bad code."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.sched.swp import ModuloScheduler
from repro.sched.swp_materialize import (
    materialize_counted_loop,
    recognize_counted_loop,
)


def _pipeline(text):
    fn = parse_function(text)
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return fn, cfg, ddg


def _counted(trips, extra_use_of_counter=False):
    use = "  add r30 = r9, r32\n" if extra_use_of_counter else ""
    return f"""
.proc scope
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r15 = r32, 0
  mov r9 = 0
.block LOOP freq=100 succ=LOOP:0.9,POST:0.1
  add r20 = r15, r33
  ld8 r21 = [r20] cls=heap
  add r15 = r21, r32
  xor r23 = r21, r33
  and r24 = r23, r21
  or r25 = r24, r23
{use}  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, {trips}
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r15, 0
  br.ret b0
.endp
"""


def test_too_few_trips_fully_unrolled():
    # Trip counts below the pipeline depth cannot complete a kernel
    # pass; the materializer fully unrolls instead of pipelining, and
    # the unrolled routine must be loop-free yet execute identically.
    fn, cfg, ddg = _pipeline(_counted(1))
    loop = cfg.loops[0]
    msched = ModuloScheduler().schedule_loop(fn, cfg, ddg, loop)
    out = materialize_counted_loop(fn, cfg, ddg, loop, msched)
    assert out is not None
    assert not CfgInfo(out).loops
    from repro.ir.interp import Interpreter, initial_registers

    interp = Interpreter(max_blocks=1000)
    registers = initial_registers(fn, 4)
    want = interp.run_function(fn, registers, seed=4)
    got = interp.run_function(out, registers, seed=4)
    assert want.returned and got.returned
    assert got.live_out_state(out) == want.live_out_state(fn)
    assert got.memory == want.memory


def test_counter_with_data_use_rejected():
    fn, cfg, ddg = _pipeline(_counted(12, extra_use_of_counter=True))
    loop = cfg.loops[0]
    assert recognize_counted_loop(fn, loop) is None


def test_ample_trips_materialize():
    fn, cfg, ddg = _pipeline(_counted(12))
    loop = cfg.loops[0]
    msched = ModuloScheduler().schedule_loop(fn, cfg, ddg, loop)
    out = materialize_counted_loop(fn, cfg, ddg, loop, msched)
    assert out is not None
    from repro.ir.interp import Interpreter, initial_registers

    interp = Interpreter(max_blocks=1000)
    registers = initial_registers(fn, 9)
    want = interp.run_function(fn, registers, seed=9)
    got = interp.run_function(out, registers, seed=9)
    assert want.returned and got.returned
    assert got.live_out_state(out) == want.live_out_state(fn)
    assert got.memory == want.memory


def test_non_lt_compare_rejected():
    text = _counted(12).replace("cmp.lt p16", "cmp.ne p16")
    fn, cfg, ddg = _pipeline(text)
    assert recognize_counted_loop(fn, cfg.loops[0]) is None
