"""The modulo-scheduling subsystem: bounds, formulation, ladder, oracle.

Covers the three layers of :mod:`repro.sched.modulo` separately —
closed-form lower bounds, the (row, stage) ILP, and the II ladder with
its §8 degradation contract — plus the hypothesis property that a
materialized pipeline is execution-equivalent to its source loop for
arbitrary trip counts.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ilp import solve_model
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.interp import Interpreter, initial_registers
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.machine.itanium2 import ITANIUM2
from repro.sched.modulo.bounds import (
    critical_path,
    has_positive_cycle,
    recurrence_mii,
    resource_mii,
)
from repro.sched.modulo.formulation import ModuloIlp
from repro.sched.modulo.ladder import LoopPipelineOutcome, pipeline_loop
from repro.sched.swp import ModuloScheduler, build_modulo_edges
from repro.tools import faults
from repro.tools.deadline import Deadline

COUNTED_LOOP = """
.proc counted
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r15 = r32, 0
  mov r9 = 0
.block LOOP freq=130 succ=LOOP:0.92,POST:0.08
  add r20 = r15, r33
  ld8 r21 = [r20] cls=heap
  add r15 = r21, r32
  xor r23 = r21, r33
  and r24 = r23, r21
  or r25 = r24, r23
  st8 [r33+8] = r25 cls=glob
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, 13
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r15, 0
  br.ret b0
.endp
"""


def _pipeline(text):
    fn = parse_function(text)
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return fn, cfg, ddg


def _loop_parts(text):
    fn, cfg, ddg = _pipeline(text)
    loop = cfg.loops[0]
    body = ModuloScheduler._body_instructions(fn, loop)
    edges = build_modulo_edges(fn, loop, body, ddg)
    return fn, cfg, ddg, loop, body, edges


# -- bounds --------------------------------------------------------------------
def test_resource_mii_counts_memory_ports():
    # Five memory operations against the Itanium 2's four M slots per
    # issue group force ResMII >= ceil(5/4) = 2.
    text = """
.proc mem
.livein r32
.liveout r8
.block PRE freq=10
  mov r9 = 0
.block LOOP freq=100 succ=LOOP:0.9,POST:0.1
  ld8 r10 = [r32+0] cls=heap
  ld8 r11 = [r32+8] cls=heap
  ld8 r12 = [r32+16] cls=heap
  ld8 r13 = [r32+24] cls=heap
  st8 [r32+32] = r10 cls=glob
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, 5
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r10, 0
  br.ret b0
.endp
"""
    _fn, _cfg, _ddg, _loop, body, _edges = _loop_parts(text)
    assert resource_mii(body, ITANIUM2) >= 2


def test_recurrence_mii_from_carried_cycle():
    # add -> xor (latency 1) and xor -> add carried with distance 1
    # (latency 1): cycle latency 2 over distance 1 -> RecMII 2.
    text = """
.proc rec
.livein r32, r33
.liveout r8
.block PRE freq=10
  mov r9 = 0
  add r4 = r32, 0
  add r5 = r33, 0
.block LOOP freq=100 succ=LOOP:0.9,POST:0.1
  add r4 = r5, r32
  xor r5 = r4, r33
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, 7
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r4, 0
  br.ret b0
.endp
"""
    _fn, _cfg, _ddg, _loop, body, edges = _loop_parts(text)
    mii = recurrence_mii(body, edges)
    assert mii >= 2
    assert has_positive_cycle(body, edges, mii - 1)
    assert not has_positive_cycle(body, edges, mii)


def test_critical_path_bounds_acyclic_span():
    _fn, _cfg, _ddg, _loop, body, edges = _loop_parts(COUNTED_LOOP)
    span = critical_path(body, edges)
    # add(1) -> ld(2) -> xor(1) -> and(1) -> or(1) -> st chain exists.
    assert span >= 5


# -- formulation ---------------------------------------------------------------
def test_modulo_ilp_respects_rows_and_dependences():
    _fn, _cfg, _ddg, _loop, body, edges = _loop_parts(COUNTED_LOOP)
    mii = max(resource_mii(body, ITANIUM2), recurrence_mii(body, edges), 1)
    ilp = ModuloIlp(body, edges, mii, machine=ITANIUM2, max_stages=4)
    solution = solve_model(ilp.model, backend="highs", time_limit=20.0)
    assert solution, solution.status
    starts = ilp.start_times(solution)
    assert set(starts) == set(body)
    # Modulo reservation: per row, per unit kind, within dispersal caps.
    rows = {}
    for instr, start in starts.items():
        rows.setdefault(start % mii, []).append(instr)
    for row_ops in rows.values():
        assert len(row_ops) <= 6
        mem = sum(1 for i in row_ops if i.op.is_load or i.op.is_store)
        assert mem <= 4
    # Dependences hold in the flat (cross-iteration) schedule.
    for edge in edges:
        if edge.src not in starts or edge.dst not in starts:
            continue
        assert (
            starts[edge.dst] + edge.distance * mii
            >= starts[edge.src] + edge.latency
        ), (edge.src.mnemonic, edge.dst.mnemonic)


def test_modulo_ilp_infeasible_below_recurrence_bound():
    text = """
.proc tight
.livein r32
.liveout r8
.block PRE freq=10
  mov r9 = 0
  add r4 = r32, 0
.block LOOP freq=100 succ=LOOP:0.9,POST:0.1
  add r4 = r4, r32
  xor r4 = r4, r32
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, 7
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r4, 0
  br.ret b0
.endp
"""
    _fn, _cfg, _ddg, _loop, body, edges = _loop_parts(text)
    rec = recurrence_mii(body, edges)
    assert rec >= 2
    ilp = ModuloIlp(body, edges, rec - 1, machine=ITANIUM2, max_stages=4)
    solution = solve_model(ilp.model, backend="highs", time_limit=20.0)
    assert not solution


# -- the ladder ----------------------------------------------------------------
@pytest.fixture(scope="module")
def counted_outcome():
    fn, cfg, ddg, loop, _body, _edges = _loop_parts(COUNTED_LOOP)
    return pipeline_loop(fn, cfg, ddg, loop), fn


def test_ladder_pipelines_at_mii(counted_outcome):
    outcome, _fn = counted_outcome
    assert outcome.status == "pipelined"
    assert outcome.method == "modulo_ilp"
    assert outcome.ii == outcome.mii
    assert outcome.oracle and outcome.oracle.ok
    assert "pipelined II=" in outcome.summary()


def test_ladder_outcome_kernel_executes(counted_outcome):
    outcome, fn = counted_outcome
    interp = Interpreter()
    registers = initial_registers(fn, 3)
    want = interp.run_function(fn, registers, seed=3)
    got = interp.run_function(outcome.pipelined_fn, registers, seed=3)
    assert got.live_out_state(fn) == want.live_out_state(fn)
    assert got.memory == want.memory


def test_ladder_not_counted_is_unpipelined():
    # A loop whose counter is also live-out is out of recognizer scope.
    text = """
.proc notcounted
.livein r32
.liveout r8, r9
.block PRE freq=10
  mov r9 = 0
.block LOOP freq=100 succ=LOOP:0.9,POST:0.1
  add r10 = r32, r9
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, 5
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r10, 0
  br.ret b0
.endp
"""
    fn, cfg, ddg = _pipeline(text)
    outcome = pipeline_loop(fn, cfg, ddg, cfg.loops[0])
    assert outcome.status == "unpipelined"
    assert outcome.fallback_reason == "not_counted"
    assert not outcome.pipelined
    assert "unpipelined" in outcome.summary()


def test_ladder_chaos_degrades_never_raises():
    fn, cfg, ddg, loop, _body, _edges = _loop_parts(COUNTED_LOOP)
    # One materialization fault: the modulo kernel is discarded, the
    # time-indexed rung still produces a pipelined loop.
    with faults.inject("swp.materialize=error:1"):
        outcome = pipeline_loop(fn, cfg, ddg, loop)
    assert outcome.status == "fallback_swp"
    assert outcome.method == "time_indexed"
    assert outcome.oracle and outcome.oracle.ok
    # Persistent faults exhaust every rung: the loop is left alone.
    with faults.inject("swp.materialize=error"):
        outcome = pipeline_loop(fn, cfg, ddg, loop)
    assert outcome.status == "unpipelined"
    assert not outcome.pipelined


def test_ladder_respects_exhausted_deadline():
    fn, cfg, ddg, loop, _body, _edges = _loop_parts(COUNTED_LOOP)
    deadline = Deadline(0.0)
    outcome = pipeline_loop(fn, cfg, ddg, loop, deadline=deadline)
    assert outcome.status == "unpipelined"


def test_ladder_cache_roundtrip(tmp_path):
    from repro.sched.scheduler import ScheduleFeatures
    from repro.serve.store import ScheduleStore

    store = ScheduleStore(tmp_path / "cache")
    features = ScheduleFeatures(swp=True)
    fn, cfg, ddg, loop, _body, _edges = _loop_parts(COUNTED_LOOP)
    first = pipeline_loop(fn, cfg, ddg, loop, features=features, store=store)
    assert first.cache == "miss"
    assert first.status == "pipelined"
    second = pipeline_loop(fn, cfg, ddg, loop, features=features, store=store)
    assert second.cache == "hit"
    assert second.status == "pipelined"
    assert second.ii == first.ii
    # The cached rung still executes the oracle before trusting the entry.
    assert second.oracle and second.oracle.ok


# -- satellite: execution-equivalence property ---------------------------------
def _counted_template(trips, accumulators):
    accs = ""
    body = ""
    outs = []
    for k in range(accumulators):
        accs += f"  add r{40 + k} = r3{3 + k}, 0\n"
        body += f"  add r{40 + k} = r{40 + k}, r15\n"
        outs.append(f"r{40 + k}")
    return f"""
.proc prop
.livein r32, r33, r34, r35
.liveout r8, {", ".join(outs)}
.block PRE freq=10
  add r15 = r32, 0
  mov r9 = 0
{accs}.block LOOP freq=130 succ=LOOP:0.92,POST:0.08
  ld8 r21 = [r15+0] cls=heap
  xor r23 = r21, r33
{body}  st8 [r33+8] = r23 cls=glob
  adds r15 = 8, r15
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, {trips}
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r23, 0
  br.ret b0
.endp
"""


@given(
    trips=st.integers(min_value=0, max_value=9),
    accumulators=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_materialized_pipeline_equivalent_for_any_trip_count(
    trips, accumulators, seed
):
    """The pinned acceptance property (ISSUE 10, satellite 3).

    For arbitrary trip counts — including 0 and 1, both below the stage
    count — the materialized prologue/kernel/epilogue routine computes
    the same live-outs and memory image as the source loop, and any
    achieved II respects the ResMII/RecMII floor.
    """
    fn, cfg, ddg = _pipeline(_counted_template(trips, accumulators))
    loop = cfg.loops[0]
    outcome = pipeline_loop(fn, cfg, ddg, loop, time_limit=20.0)
    assert isinstance(outcome, LoopPipelineOutcome)
    if not outcome.pipelined:
        return  # degradation is legal; equivalence is vacuous
    assert outcome.ii >= max(outcome.mii_resource, outcome.mii_recurrence)
    interp = Interpreter()
    registers = initial_registers(fn, seed)
    want = interp.run_function(fn, registers, seed=seed)
    got = interp.run_function(outcome.pipelined_fn, registers, seed=seed)
    assert want.returned and got.returned
    assert got.live_out_state(fn) == want.live_out_state(fn)
    assert got.memory == want.memory
