"""Block-collapse modeling (paper Sec. 5.4)."""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function

# The side block B holds only movable code plus its unconditional branch:
# the optimum empties B entirely, and the branch disappears with it.
TEXT = """
.proc collapse
.livein r32, r33
.liveout r8
.block A freq=100
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond C
.block B freq=60
  add r10 = r32, r33
  add r11 = r10, r32
  br D
.block C freq=40
  add r12 = r33, 4
.block D freq=100
  add r8 = r32, r33
  br.ret b0
.endp
"""


@pytest.fixture(scope="module")
def collapsed():
    return optimize_function(
        parse_function(TEXT), ScheduleFeatures(time_limit=30)
    )


def test_side_block_collapses(collapsed):
    assert collapsed.verification.ok
    assert "B" in collapsed.output_schedule.collapsed_blocks()


def test_collapsed_branch_dropped(collapsed):
    placed = [
        p.instr.mnemonic for p in collapsed.output_schedule.placements()
    ]
    # The unconditional br of B is gone; the conditional of A and the
    # return of D remain.
    assert placed.count("br") == 0
    assert "br.cond" in placed and "br.ret" in placed


def test_collapse_disabled_keeps_branch():
    result = optimize_function(
        parse_function(TEXT),
        ScheduleFeatures(time_limit=30, collapse_branches=False),
    )
    assert result.verification.ok
    assert "B" not in result.output_schedule.collapsed_blocks()


def test_backedge_branch_never_collapses(loop_fn):
    result = optimize_function(loop_fn, ScheduleFeatures(time_limit=30))
    assert result.verification.ok
    assert "LOOP" not in result.output_schedule.collapsed_blocks()
