"""The scheduling ILP: structure and basic solves."""

import pytest

from repro.ilp import solve_model
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.machine.itanium2 import ITANIUM2
from repro.sched.cycles import lengths_from_input
from repro.sched.ilp_formulation import SchedulingIlp
from repro.sched.list_scheduler import ListScheduler
from repro.sched.regions import build_region


@pytest.fixture
def built(diamond_fn):
    cfg = CfgInfo(diamond_fn)
    ddg = build_dependence_graph(diamond_fn, cfg, compute_liveness(diamond_fn))
    input_schedule = ListScheduler().schedule(diamond_fn, ddg)
    region = build_region(diamond_fn, cfg, ddg, allow_predication=False)
    lengths = lengths_from_input(input_schedule, diamond_fn)
    ilp = SchedulingIlp(region, lengths, ITANIUM2)
    return ilp, input_schedule, region


def test_variable_classes_created(built):
    ilp, _, region = built
    model = ilp.generate()
    x_names = [v for v in model.variables if v.name.startswith("x_")]
    a_names = [v for v in model.variables if v.name.startswith("a_")]
    len_names = [v for v in model.variables if v.name.startswith("len_")]
    assert x_names and a_names and len_names
    assert all(v.is_binary for v in model.variables)


def test_objective_is_weighted_lengths(built):
    ilp, _, _ = built
    model = ilp.generate()
    # Every objective term is freq * t * len_var with t >= 1.
    for var, coef in model.objective.terms.items():
        assert var.name.startswith("len_")
        assert coef > 0


def test_solves_to_optimality(built):
    ilp, input_schedule, _ = built
    model = ilp.generate()
    solution = solve_model(model)
    assert solution.status.name == "OPTIMAL"
    # Never worse than the heuristic input.
    assert solution.objective <= input_schedule.weighted_length(ilp.region.fn)


def test_generate_is_single_shot(built):
    ilp, _, _ = built
    ilp.generate()
    with pytest.raises(Exception):
        ilp.generate()


def test_branch_last_cycle_constraints_exist(built):
    ilp, _, _ = built
    model = ilp.generate()
    assert any(c.name.startswith("br_last") for c in model.constraints)


def test_resource_constraints_exist(built):
    ilp, _, _ = built
    model = ilp.generate()
    assert any(c.name.startswith("width_") for c in model.constraints)


def test_bundling_cut_forbids_group(diamond_fn):
    cfg = CfgInfo(diamond_fn)
    ddg = build_dependence_graph(diamond_fn, cfg, compute_liveness(diamond_fn))
    input_schedule = ListScheduler().schedule(diamond_fn, ddg)
    region = build_region(diamond_fn, cfg, ddg, allow_predication=False)
    lengths = lengths_from_input(input_schedule, diamond_fn)

    ilp = SchedulingIlp(region, lengths, ITANIUM2)
    pair = [
        (i.root_origin, "A")
        for i in region.blocks_hosting("A")
        if not i.is_branch
    ][:2]
    ilp.bundling_cuts.append(pair)
    model = ilp.generate()
    assert any(c.name.startswith("bundle_cut") for c in model.constraints)
    solution = solve_model(model)
    assert solution.status.has_solution
    # The two instructions never share (A, t).
    for t in range(1, lengths["A"] + 1):
        together = sum(
            solution.value_of(ilp.x[(i, "A", t)])
            for i, _b in pair
            if (i, "A", t) in ilp.x
        )
        assert together <= 1
