"""Property tests for the decomposed pipeline on random routines.

* Whatever the partition plan, a stitched schedule must pass the
  whole-function path verifier and never lose to the heuristic input.
* When no legal partition plan exists the decomposed path must be a
  no-op: the emitted routine is identical (modulo instruction-uid
  labels) to a ``decompose=False`` run.
"""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.sched.decompose import plan_partitions
from repro.sched.regions import build_region
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.generator import (
    MultiRegionSpec,
    RoutineSpec,
    generate_multi_region,
    generate_routine,
)

from tests.sched.test_decompose import _normalized_emit

FEATURES = ScheduleFeatures(
    time_limit=90, max_hops=4, decompose_min_instructions=24
)


@given(seed=st.integers(0, 10**6))
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_stitched_schedule_verifies(seed):
    spec = MultiRegionSpec(
        name="mrprop",
        segments=4,
        segment_instructions=10,
        segment_blocks=4,
        seed=seed,
    )
    fn = generate_multi_region(spec)
    result = optimize_function(fn, FEATURES)
    assert result.verification.ok, result.verification.problems[:3]
    assert result.weighted_length_out <= result.weighted_length_in + 1e-9
    assert result.bundles_out.total_bundles >= 1


@given(seed=st.integers(0, 10**5))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_unpartitionable_routine_identical_to_decompose_off(seed):
    spec = RoutineSpec(
        name="single", seed=seed, instructions=18, blocks=5, loops=1
    )
    fn = generate_routine(spec)
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    region = build_region(
        fn, cfg, ddg, max_hops=FEATURES.max_hops, freq_cap=FEATURES.freq_cap
    )
    features_on = ScheduleFeatures(
        time_limit=60, max_hops=4, decompose_min_instructions=1
    )
    assume(plan_partitions(region, features_on) is None)

    on = optimize_function(generate_routine(spec), features_on)
    off = optimize_function(
        generate_routine(spec),
        ScheduleFeatures(time_limit=60, max_hops=4, decompose=False),
    )
    assert not any("decomposed into" in m for m in on.messages)
    assert _normalized_emit(on) == _normalized_emit(off)
