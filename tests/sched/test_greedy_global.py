"""Greedy global baseline scheduler."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.sched.greedy_global import GreedyGlobalScheduler
from repro.sched.list_scheduler import ListScheduler
from repro.sched.regions import build_region
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.sched.verifier import verify_schedule
from repro.workloads.spec_routines import build_spec_routine


def _setup(fn):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    region = build_region(fn, cfg, ddg, allow_predication=False)
    return cfg, ddg, region


def test_greedy_not_worse_than_local(diamond_fn):
    cfg, ddg, region = _setup(diamond_fn)
    local = ListScheduler().schedule(diamond_fn, ddg)
    greedy = GreedyGlobalScheduler().schedule(diamond_fn, ddg, region)
    assert greedy.weighted_length(diamond_fn) <= local.weighted_length(
        diamond_fn
    )


def test_greedy_schedules_verify(diamond_fn, loop_fn):
    for fn in (diamond_fn, loop_fn):
        cfg, ddg, region = _setup(fn)
        schedule = GreedyGlobalScheduler().schedule(fn, ddg, region)
        report = verify_schedule(schedule, region)
        assert report.ok, report.problems[:4]


def test_greedy_hoists_on_real_routine():
    fn = build_spec_routine("xfree", scale=0.6)
    from repro.sched.prep import clone_function, undo_speculation
    from repro.ir.rename import rename_registers

    work = clone_function(fn)
    undo_speculation(work)
    rename_registers(work)
    cfg, ddg, region = _setup(work)
    local = ListScheduler().schedule(work, ddg)
    greedy = GreedyGlobalScheduler().schedule(work, ddg, region)
    report = verify_schedule(greedy, region)
    assert report.ok, report.problems[:4]
    assert greedy.weighted_length(work) <= local.weighted_length(work)


def test_ilp_still_beats_greedy_baseline():
    fn = build_spec_routine("xfree", scale=0.6)
    result = optimize_function(
        fn, ScheduleFeatures(time_limit=45, baseline="greedy", max_hops=4)
    )
    assert result.verification.ok
    # The ILP may at worst match the heuristic, never lose to it.
    assert result.weighted_length_out <= result.weighted_length_in
    # Against the *greedy* baseline reductions shrink toward the paper's
    # published 20-40 % band.
    local = optimize_function(
        fn, ScheduleFeatures(time_limit=45, baseline="local", max_hops=4)
    )
    assert result.static_reduction <= local.static_reduction + 1e-9
