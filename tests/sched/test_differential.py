"""Differential semantic testing: the optimizer preserves behaviour.

The strongest correctness check in the suite: execute the prepared
routine and its ILP-optimized schedule over concrete values and compare

* the taken block trace (branch decisions are value-dependent),
* the routine's live-out register values, and
* the final memory contents.

Any dependence violation, lost instruction, wrong compensation copy,
mis-guarded predicated copy or broken speculation group changes one of
the three. Runs over the figure samples and randomized generated
routines with all extensions enabled.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir.interp import Interpreter, initial_registers
from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.generator import RoutineSpec, generate_routine
from repro.workloads.samples import (
    fig1_code_motion_sample,
    fig4_speculation_sample,
    fig5_cyclic_sample,
    fig6_partial_ready_sample,
)

FEATURES = ScheduleFeatures(time_limit=30, max_hops=3)


def _compare(fn, want, got, seed):
    assert got.block_trace == want.block_trace, (
        f"seed {seed}: trace diverged at block "
        f"{next(i for i, (a, b) in enumerate(zip(want.block_trace, got.block_trace)) if a != b)}"
    )
    if want.returned and got.returned:
        # Register and memory images are only comparable for completed
        # executions: legal code motion (a sunk loop-invariant store, a
        # hoisted post-loop definition) moves work across the truncation
        # boundary of an unfinished loop.
        assert got.live_out_state(fn) == want.live_out_state(fn)
        assert got.memory == want.memory
    else:
        assert want.returned == got.returned


def _differential(fn, features=FEATURES, seeds=(0, 1, 2)):
    result = optimize_function(fn, features)
    assert result.verification.ok, result.verification.problems[:3]
    interp = Interpreter(max_blocks=600)
    for seed in seeds:
        registers = initial_registers(result.fn, seed)
        want = interp.run_function(result.fn, registers, seed=seed)
        got = interp.run_schedule(
            result.output_schedule, result.fn, registers, seed=seed
        )
        _compare(result.fn, want, got, seed)
    return result


@pytest.mark.parametrize(
    "sample",
    [
        fig1_code_motion_sample,
        fig4_speculation_sample,
        fig5_cyclic_sample,
        fig6_partial_ready_sample,
    ],
    ids=["fig1", "fig4", "fig5", "fig6"],
)
def test_figure_samples_semantics_preserved(sample):
    _differential(parse_function(sample()))


def test_collapse_semantics_preserved():
    text = """
.proc collapse
.livein r32, r33
.liveout r8
.block A freq=100
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond C
.block B freq=60
  add r10 = r32, r33
  add r11 = r10, r32
  br D
.block C freq=40
  add r12 = r33, 4
.block D freq=100
  add r8 = r32, r33
  br.ret b0
.endp
"""
    _differential(parse_function(text))


@given(seed=st.integers(0, 10**6))
@settings(
    max_examples=16,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_routines_semantics_preserved(seed):
    spec = RoutineSpec(
        name="diff",
        seed=seed,
        instructions=22,
        blocks=6,
        loops=1,
        input_spec_loads=1,
    )
    fn = generate_routine(spec)
    _differential(fn, seeds=(0, 5))


def test_greedy_baseline_semantics_preserved():
    fn = generate_routine(
        RoutineSpec(name="gdiff", seed=99, instructions=26, blocks=6, loops=1)
    )
    result = optimize_function(
        fn, ScheduleFeatures(time_limit=30, max_hops=3, baseline="greedy")
    )
    interp = Interpreter(max_blocks=600)
    registers = initial_registers(result.fn, 7)
    want = interp.run_function(result.fn, registers, seed=7)
    got_in = interp.run_schedule(
        result.input_schedule, result.fn, registers, seed=7
    )
    got_out = interp.run_schedule(
        result.output_schedule, result.fn, registers, seed=7
    )
    for got in (got_in, got_out):
        _compare(result.fn, want, got, 7)
