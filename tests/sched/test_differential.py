"""Differential semantic testing: the optimizer preserves behaviour.

The strongest correctness check in the suite: execute the prepared
routine and its ILP-optimized schedule over concrete values and compare

* the taken block trace (branch decisions are value-dependent),
* the routine's live-out register values, and
* the final memory contents.

Any dependence violation, lost instruction, wrong compensation copy,
mis-guarded predicated copy or broken speculation group changes one of
the three. Runs over the figure samples and randomized generated
routines with all extensions enabled.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir.interp import Interpreter, initial_registers
from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.generator import RoutineSpec, generate_routine
from repro.workloads.samples import (
    fig1_code_motion_sample,
    fig4_speculation_sample,
    fig5_cyclic_sample,
    fig6_partial_ready_sample,
)

FEATURES = ScheduleFeatures(time_limit=30, max_hops=3)


def _compare(fn, want, got, seed, compare_stores=False):
    assert got.block_trace == want.block_trace, (
        f"seed {seed}: trace diverged at block "
        f"{next(i for i, (a, b) in enumerate(zip(want.block_trace, got.block_trace)) if a != b)}"
    )
    if want.returned and got.returned:
        # Register and memory images are only comparable for completed
        # executions: legal code motion (a sunk loop-invariant store, a
        # hoisted post-loop definition) moves work across the truncation
        # boundary of an unfinished loop.
        assert got.live_out_state(fn) == want.live_out_state(fn)
        assert got.memory == want.memory
        if compare_stores:
            # Opt-in stronger check: the per-address *value history*,
            # not just the final image — an overwritten wrong store is
            # invisible to the memory comparison above but not to this.
            # Candidate for promotion into verify_schedule once the
            # known divergence (test_seed905_store_values_pinned) is
            # resolved.
            assert got.store_sequences() == want.store_sequences(), (
                f"seed {seed}: store value sequences diverged"
            )
    else:
        assert want.returned == got.returned


def _differential(fn, features=FEATURES, seeds=(0, 1, 2), compare_stores=False):
    result = optimize_function(fn, features)
    assert result.verification.ok, result.verification.problems[:3]
    interp = Interpreter(max_blocks=600, record_stores=compare_stores)
    for seed in seeds:
        registers = initial_registers(result.fn, seed)
        want = interp.run_function(result.fn, registers, seed=seed)
        got = interp.run_schedule(
            result.output_schedule, result.fn, registers, seed=seed
        )
        _compare(result.fn, want, got, seed, compare_stores=compare_stores)
    return result


@pytest.mark.parametrize(
    "sample",
    [
        fig1_code_motion_sample,
        fig4_speculation_sample,
        fig5_cyclic_sample,
        fig6_partial_ready_sample,
    ],
    ids=["fig1", "fig4", "fig5", "fig6"],
)
def test_figure_samples_semantics_preserved(sample):
    _differential(parse_function(sample()))


def test_collapse_semantics_preserved():
    text = """
.proc collapse
.livein r32, r33
.liveout r8
.block A freq=100
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond C
.block B freq=60
  add r10 = r32, r33
  add r11 = r10, r32
  br D
.block C freq=40
  add r12 = r33, 4
.block D freq=100
  add r8 = r32, r33
  br.ret b0
.endp
"""
    _differential(parse_function(text))


@given(seed=st.integers(0, 10**6))
@settings(
    max_examples=16,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_routines_semantics_preserved(seed):
    spec = RoutineSpec(
        name="diff",
        seed=seed,
        instructions=22,
        blocks=6,
        loops=1,
        input_spec_loads=1,
    )
    fn = generate_routine(spec)
    _differential(fn, seeds=(0, 5))


def test_store_value_sequences_preserved():
    """Opt-in store-history mode passes on a well-behaved loop.

    Two same-class stores to one address alternate per iteration; the
    output dependence pins their order, so the per-address value
    sequence must survive scheduling exactly.
    """
    text = """
.proc storeseq
.livein r32, r38
.liveout r8
.block B0 freq=1000
  mov r9 = 0
.block B1 freq=6000
  st8 [r38+16] = r38 cls=heap
  cmp.ge p18, p19 = r9, 6
  (p18) br.cond B3
.block B2 freq=5000
  st8 [r38+16] = r32 cls=heap
  adds r9 = r9, 1
  br B1
.block B3 freq=1000
  add r8 = r38, 0
  br.ret b0
.endp
"""
    _differential(parse_function(text), compare_stores=True)


# Minimized from ``RoutineSpec(name="diff", seed=905, instructions=22,
# blocks=6, loops=1, input_spec_loads=1)``: the loop header's heap-class
# store is loop-invariant and under M-unit pressure, so the scheduler
# profitably hoists it out of the loop — past the latch's *same-address*
# store, which carries a different alias class and therefore no output
# dependence. The motion is model-legal (the verifier's last-copy rule
# cannot express cross-iteration store counts) but concretely collapses
# thirteen alternating stores into seven, changing both the per-address
# value history and the final memory image.
SEED905_MINIMIZED = """
.proc seed905min
.livein r32, r38
.liveout r8, r10, r11, r12, r13
.block B0 freq=1000
  mov r9 = 0
.block B1 freq=6000
  ld8 r10 = [r38+0] cls=stack
  ld8 r11 = [r38+8] cls=stack
  ld8 r12 = [r38+24] cls=stack
  ld8 r13 = [r38+32] cls=stack
  st8 [r38+16] = r38 cls=heap
  cmp.ge p18, p19 = r9, 6
  (p18) br.cond B3
.block B2 freq=5000
  st8 [r38+16] = r32 cls=glob
  adds r9 = r9, 1
  br B1
.block B3 freq=1000
  add r8 = r38, 0
  br.ret b0
.endp
"""


@pytest.mark.xfail(
    strict=False,
    reason="known store-value divergence (generator seed=905, minimized): "
    "a loop-invariant store hoists out of the loop past a same-address "
    "store in a different alias class — class-based disambiguation sees "
    "no conflict, so the motion is model-legal but changes the concrete "
    "store history. Pinned until alias classes become sound for stores "
    "or verify_schedule learns cross-iteration store counting.",
)
def test_seed905_store_values_pinned():
    _differential(parse_function(SEED905_MINIMIZED), compare_stores=True)


def test_greedy_baseline_semantics_preserved():
    fn = generate_routine(
        RoutineSpec(name="gdiff", seed=99, instructions=26, blocks=6, loops=1)
    )
    result = optimize_function(
        fn, ScheduleFeatures(time_limit=30, max_hops=3, baseline="greedy")
    )
    interp = Interpreter(max_blocks=600)
    registers = initial_registers(result.fn, 7)
    want = interp.run_function(result.fn, registers, seed=7)
    got_in = interp.run_schedule(
        result.input_schedule, result.fn, registers, seed=7
    )
    got_out = interp.run_schedule(
        result.output_schedule, result.fn, registers, seed=7
    )
    for got in (got_in, got_out):
        _compare(result.fn, want, got, 7)
