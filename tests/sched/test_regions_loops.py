"""Loop-related Θ restrictions (the Sec. 5.2 motion rules)."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.sched.regions import build_region

TEXT = """
.proc loopy
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r10 = r32, r33
  add r15 = r32, 0
.block LOOP freq=1000 succ=LOOP:0.9,POST:0.1
  ld8 r20 = [r15] cls=heap
  add r21 = r20, r10
  adds r15 = 8, r15
  cmp.ne p6, p7 = r20, r0
  (p6) br.cond LOOP
.block POST freq=10
  add r22 = r21, r10
  add r8 = r22, r32
  br.ret b0
.endp
"""


@pytest.fixture(scope="module")
def region():
    fn = parse_function(TEXT)
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return build_region(fn, cfg, ddg, allow_predication=False)


def _find(region, mnemonic, block):
    return next(
        i
        for i in region.instructions
        if i.mnemonic == mnemonic and region.source_block[i] == block
    )


def test_variant_load_confined_to_loop(region):
    """ld [r15] with r15 updated in the loop may move neither direction."""
    load = _find(region, "ld8", "LOOP")
    assert load in region.backedge_variant
    assert region.theta[load] <= {"LOOP"}


def test_self_update_confined(region):
    update = _find(region, "adds", "LOOP")
    assert update in region.backedge_variant
    assert region.theta[update] == {"LOOP"}


def test_forward_fed_consumer_is_dependence_guarded(region):
    """add r21 = r20, r10 reads a *forward* in-loop value: Θ may be wider
    (sinking below the loop computes the identical final value), but the
    true dependence on the confined load makes any hoist above the loop
    infeasible in the model."""
    from repro.ir.ddg import DepKind

    consumer = _find(region, "add", "LOOP")
    load = _find(region, "ld8", "LOOP")
    assert consumer not in region.backedge_variant
    assert any(
        e.src is load and e.dst is consumer and e.kind is DepKind.TRUE
        for e in region.ddg.edges
    )
    assert region.theta[load] <= {"LOOP"}  # the anchor it cannot outrun


def test_invariant_computation_not_dragged_into_loop(region):
    """PRE's add r10 must not enter the loop: its consumer set is wider,
    and re-execution buys nothing — but crucially, placement *into* the
    loop is only allowed for operand-invariant instructions anyway."""
    invariant = _find(region, "add", "PRE")
    # r32/r33 are not written in the loop, so into-loop placement is
    # permitted by the Sec. 5.2 rule (speculative + multiply-executable).
    assert region.speculative[invariant]


def test_post_loop_reader_cannot_enter_loop(region):
    """POST's add r22 reads r21 (written in the loop): no loop placement."""
    reader = _find(region, "add", "POST")
    assert "LOOP" not in region.theta[reader]


def test_escaping_value_dependence_exists(region):
    """The loop-written r21 read in POST keeps a true edge even though the
    DAG has no forward path from the loop latch to POST's block."""
    from repro.ir.ddg import DepKind

    producer = _find(region, "add", "LOOP")
    consumer = _find(region, "add", "POST")
    assert any(
        e.src is producer and e.dst is consumer and e.kind is DepKind.TRUE
        for e in region.ddg.edges
    )
