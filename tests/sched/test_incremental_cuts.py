"""Incremental cut-loop re-solves must be invisible in the output.

The driver caches the built model across bundling-cut re-solves and
appends cut rows instead of regenerating (``ScheduleFeatures.
incremental_cuts``). The legacy rebuild-everything path stays available;
this file pins the two paths to byte-identical schedules on the Fig. 1
code-motion sample and on the Sec. 4.2 cut-trigger routine.
"""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.samples import fig1_code_motion_sample

CUT_TRIGGER = """
.proc fbound
.livein r32, f5, f6, f8, f9
.liveout r8, f4, f7
.block A freq=100
  fma f4 = f5, f6
  fma f7 = f8, f9
  movl r10 = 99999
  add r8 = r10, r32
  br.ret b0
.endp
"""


def _placements(schedule):
    return [
        (block, cycle, instr.mnemonic, tuple(instr.regs_written()))
        for block in schedule.block_order
        for cycle, group in sorted(schedule.cycles_of(block).items())
        for instr in group
    ]


def _run_both(fn_factory):
    results = {}
    for incremental in (False, True):
        features = ScheduleFeatures(time_limit=30, incremental_cuts=incremental)
        results[incremental] = optimize_function(fn_factory(), features)
    return results[False], results[True]


def test_fig1_diamond_identical_schedules():
    rebuilt, incremental = _run_both(
        lambda: parse_function(fig1_code_motion_sample())
    )
    assert _placements(rebuilt.output_schedule) == _placements(
        incremental.output_schedule
    )
    assert rebuilt.solution.objective == pytest.approx(
        incremental.solution.objective
    )
    assert rebuilt.verification.ok and incremental.verification.ok


def test_cut_trigger_identical_schedules_and_cuts():
    rebuilt, incremental = _run_both(lambda: parse_function(CUT_TRIGGER))
    # Both paths fired the Sec. 4.2 loop...
    for result in (rebuilt, incremental):
        assert any("bundling constraint" in m for m in result.messages)
    # ...and landed on the same schedule.
    assert _placements(rebuilt.output_schedule) == _placements(
        incremental.output_schedule
    )
    assert rebuilt.solution.objective == pytest.approx(
        incremental.solution.objective
    )
    assert rebuilt.verification.ok and incremental.verification.ok


def test_incremental_model_grows_in_place():
    """The incremental path appends cut rows to one generated model."""
    from repro.ir.cfg import CfgInfo
    from repro.ir.ddg import build_dependence_graph
    from repro.ir.liveness import compute_liveness
    from repro.machine.itanium2 import ITANIUM2
    from repro.sched.cycles import lengths_from_input
    from repro.sched.ilp_formulation import SchedulingIlp
    from repro.sched.list_scheduler import ListScheduler
    from repro.sched.regions import build_region

    fn = parse_function(CUT_TRIGGER)
    ddg = build_dependence_graph(fn, CfgInfo(fn), compute_liveness(fn))
    schedule = ListScheduler().schedule(fn, ddg)
    region = build_region(fn, CfgInfo(fn), ddg)
    lengths = lengths_from_input(schedule, fn)

    ilp = SchedulingIlp(region, dict(lengths), ITANIUM2)
    model = ilp.generate()
    before = model.num_constraints
    instrs = [i for i in fn.blocks[0].instructions if not i.is_branch]
    ilp.append_bundling_cut([(i, "A") for i in instrs[:3]])
    assert model.num_constraints > before

    # The appended rows land in the cached matrix form too.
    arrays = model.to_arrays()
    assert arrays["A"].shape[0] == model.num_constraints
