"""Scoped and exempted dependence edges in the verifier."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import DepEdge, DepKind, build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.sched.list_scheduler import ListScheduler
from repro.sched.regions import build_region
from repro.sched.verifier import verify_schedule


@pytest.fixture
def setup(loop_fn):
    cfg = CfgInfo(loop_fn)
    ddg = build_dependence_graph(loop_fn, cfg, compute_liveness(loop_fn))
    region = build_region(loop_fn, cfg, ddg, allow_predication=False)
    schedule = ListScheduler().schedule(loop_fn, ddg)
    return loop_fn, region, ddg, schedule


def test_scoped_edge_ignored_outside_scope(setup):
    fn, region, ddg, schedule = setup
    # Fabricate a backwards edge that the plain rule would flag: the POST
    # add "depends on" the loop load. Scoped to POST only, and the load
    # has no POST copy, so the check is skipped.
    load = next(i for i in fn.block("LOOP").instructions if i.is_load)
    post_add = fn.block("POST").instructions[0]
    bogus = DepEdge(post_add, load, DepKind.TRUE, 1)
    flagged = verify_schedule(
        schedule, region, dep_edges=list(ddg.edges) + [bogus]
    )
    assert not flagged.ok
    scoped = verify_schedule(
        schedule,
        region,
        dep_edges=list(ddg.edges) + [bogus],
        edge_scopes={bogus: frozenset({"POST"})},
    )
    assert scoped.ok


def test_exhaustive_flag(setup):
    fn, region, ddg, schedule = setup
    tiny = verify_schedule(schedule, region, max_paths=1)
    assert not tiny.exhaustive or tiny.paths_checked <= 1
    full = verify_schedule(schedule, region)
    assert full.exhaustive


def test_verify_without_reconstruction_uses_region(setup):
    fn, region, ddg, schedule = setup
    report = verify_schedule(schedule, region)
    assert report.ok
