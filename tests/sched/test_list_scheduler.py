"""Baseline list scheduler."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.machine.itanium2 import ITANIUM2
from repro.sched.list_scheduler import ListScheduler


def _schedule(fn):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return ListScheduler().schedule(fn, ddg), ddg


def test_all_instructions_placed(diamond_fn):
    schedule, _ = _schedule(diamond_fn)
    placed = sum(1 for _ in schedule.placements())
    assert placed == diamond_fn.instruction_count


def test_latencies_respected(straight_fn):
    schedule, ddg = _schedule(straight_fn)
    cycles = {}
    for placement in schedule.placements():
        cycles[placement.instr] = placement.cycle
    for edge in ddg.edges:
        if edge.src in cycles and edge.dst in cycles:
            assert cycles[edge.dst] - cycles[edge.src] >= edge.latency


def test_branch_in_last_cycle(diamond_fn):
    schedule, _ = _schedule(diamond_fn)
    for block in diamond_fn.blocks:
        for instr in block.instructions:
            if instr.is_branch:
                placement = next(
                    p for p in schedule.placements() if p.instr is instr
                )
                assert placement.cycle == schedule.block_length(block.name)


def test_groups_dispersal_feasible(loop_fn):
    schedule, _ = _schedule(loop_fn)
    for block in schedule.block_order:
        for cycle, group in schedule.cycles_of(block).items():
            assert ITANIUM2.group_feasible([i.unit for i in group])


def test_no_global_motion(diamond_fn):
    schedule, _ = _schedule(diamond_fn)
    for placement in schedule.placements():
        original_block = next(
            b.name
            for b in diamond_fn.blocks
            if placement.instr in b.instructions
        )
        assert placement.block == original_block


def test_order_pairs_recorded(straight_fn):
    schedule, ddg = _schedule(straight_fn)
    # any same-cycle zero-latency dep pair must be registered
    for (block, cycle), pairs in schedule.order_pairs.items():
        group = schedule.group(block, cycle)
        for i, j in pairs:
            assert 0 <= i < len(group) and 0 <= j < len(group)


def test_wide_block_uses_multiple_cycles():
    from repro.ir.parser import parse_function

    lines = [".proc wide", ".block A freq=1"]
    # 8 independent loads: only 4 M ports per cycle.
    for i in range(8):
        lines.append(f"  ld8 r{40 + i} = [r{32 + i}]")
    lines.append("  br.ret b0")
    lines.append(".endp")
    fn = parse_function("\n".join(lines))
    schedule, _ = _schedule(fn)
    assert schedule.block_length("A") >= 2
