"""``backend="portfolio"`` through the whole scheduling pipeline.

The racing layer must be invisible in the output: same schedule text as
the winning backend solo, byte-identical run-to-run under one seed, and
quality never below a single backend even when ``portfolio.cancel``
chaos faults take lanes down mid-race.
"""

import dataclasses

import pytest

from repro.ir.printer import format_function, format_schedule
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.tools import faults

RACE_FEATURES = ScheduleFeatures(
    backend="portfolio",
    portfolio_backends=("highs", "bb"),
    portfolio_seed=3,
    time_limit=60.0,
)


# -- eager feature validation -------------------------------------------------
def test_unknown_backend_rejected_with_menu():
    with pytest.raises(ValueError) as err:
        ScheduleFeatures(backend="cplex")
    # The message names every accepted backend, not just the bad one.
    for known in ("highs", "bb", "portfolio"):
        assert known in str(err.value)


def test_unknown_roster_entry_rejected_eagerly():
    with pytest.raises(ValueError, match="ordered:bb"):
        ScheduleFeatures(
            backend="portfolio", portfolio_backends=("highs", "ordred:bb")
        )


def test_empty_roster_rejected():
    with pytest.raises(ValueError, match="non-empty"):
        ScheduleFeatures(backend="portfolio", portfolio_backends=())


def test_bad_thread_budget_rejected():
    with pytest.raises(ValueError, match="portfolio_threads"):
        ScheduleFeatures(backend="portfolio", portfolio_threads=0)


def test_roster_list_coerced_to_tuple():
    features = ScheduleFeatures(
        backend="portfolio", portfolio_backends=["highs", "bb"]
    )
    assert features.portfolio_backends == ("highs", "bb")
    # Roster entries are solver-only config for non-portfolio backends:
    # they must not fail validation there (the default roster includes
    # ordered runners regardless of the chosen backend).
    ScheduleFeatures(backend="highs", portfolio_backends=["anything"])


# -- racing through the pipeline ----------------------------------------------
def _render(result):
    return format_function(result.fn) + "\n" + format_schedule(
        result.output_schedule, result.fn
    )


def _winners(result):
    return [
        s["portfolio"]["winner"]
        for s in result.trace.solves
        if s.get("portfolio")
    ]


def test_race_output_is_deterministic_per_seed(straight_fn):
    """With a serialized race (one lane slot) every run replays the same
    launch order and the same winner: output is byte-identical."""
    features = dataclasses.replace(RACE_FEATURES, portfolio_threads=1)
    first = optimize_function(straight_fn, features)
    second = optimize_function(straight_fn, features)
    assert first.quality == "optimal"
    assert _render(first) == _render(second)
    assert _winners(first) == _winners(second)


def test_parallel_race_output_is_stable(straight_fn):
    """Parallel racing may attribute the win differently run-to-run
    (tick-grain timing), but the answer itself never moves."""
    first = optimize_function(straight_fn, RACE_FEATURES)
    second = optimize_function(straight_fn, RACE_FEATURES)
    assert first.quality == second.quality == "optimal"
    assert first.weighted_length_out == second.weighted_length_out
    assert _render(first) == _render(second)


def test_race_matches_winner_solo(straight_fn):
    """Racing never changes the emitted schedule: re-running the winning
    backend alone produces the identical text."""
    features = dataclasses.replace(RACE_FEATURES, two_phase=False)
    raced = optimize_function(straight_fn, features)
    winners = _winners(raced)
    assert len(winners) == 1
    solo = optimize_function(
        straight_fn, dataclasses.replace(features, backend=winners[0])
    )
    assert _render(raced) == _render(solo)
    assert raced.weighted_length_out == solo.weighted_length_out


def test_race_quality_matches_single_backend(diamond_fn):
    raced = optimize_function(diamond_fn, RACE_FEATURES)
    solo = optimize_function(
        diamond_fn, dataclasses.replace(RACE_FEATURES, backend="highs")
    )
    assert raced.quality == solo.quality == "optimal"
    assert raced.weighted_length_out == solo.weighted_length_out


def test_full_roster_with_ordered_lanes(diamond_fn):
    features = dataclasses.replace(
        RACE_FEATURES,
        portfolio_backends=("highs", "bb", "ordered:highs", "ordered:bb"),
        two_phase=False,
    )
    result = optimize_function(diamond_fn, features)
    assert result.quality == "optimal"
    (detail,) = [
        s["portfolio"] for s in result.trace.solves if s.get("portfolio")
    ]
    ordered = [
        lane
        for lane in detail["lanes"].values()
        if lane["spec"].startswith("ordered:")
    ]
    assert ordered
    # Ordered lanes either contribute a feasible point or bow out with a
    # recorded reason — they never crash the race.
    for lane in ordered:
        assert lane["error"] is None
        assert (
            lane["status"] in ("FEASIBLE", "OPTIMAL")
            or lane["skipped"] is not None
            or lane["cancelled"]
            or lane["abandoned"]
        )


@pytest.mark.parametrize("kind", ["crash", "timeout", "corrupt", "incumbent"])
def test_portfolio_chaos_never_degrades_quality(diamond_fn, kind):
    """A faulted lane mid-pipeline leaves quality untouched: the
    survivors win the race and the verifier still passes."""
    with faults.inject(f"portfolio.cancel={kind}:1"):
        result = optimize_function(diamond_fn, RACE_FEATURES)
    assert result.quality == "optimal"
    assert result.verification is not None and result.verification.ok
    solo = optimize_function(
        diamond_fn, dataclasses.replace(RACE_FEATURES, backend="highs")
    )
    assert result.weighted_length_out <= solo.weighted_length_out


def test_portfolio_all_lanes_dead_degrades_gracefully(diamond_fn):
    """Every lane faulted in every solve: the ladder falls back instead
    of raising, and the input schedule survives as the answer."""
    with faults.inject("portfolio.cancel=crash"):
        result = optimize_function(diamond_fn, RACE_FEATURES)
    assert result.quality in ("fallback_input", "heuristic", "optimal")
    assert result.output_schedule is not None
