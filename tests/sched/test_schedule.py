"""Schedule value type."""

import pytest

from repro.ir.parser import parse_instruction
from repro.sched.schedule import Schedule


@pytest.fixture
def schedule():
    return Schedule(["A", "B"])


def test_place_and_lengths(schedule):
    i1 = parse_instruction("add r1 = r2, r3")
    i2 = parse_instruction("sub r4 = r1, r2")
    schedule.place(i1, "A", 1)
    schedule.place(i2, "A", 3)
    assert schedule.block_length("A") == 3
    assert schedule.block_length("B") == 0
    assert schedule.group("A", 3) == [i2]
    assert schedule.group("A", 2) == []


def test_invalid_placements(schedule):
    instr = parse_instruction("add r1 = r2, r3")
    with pytest.raises(KeyError):
        schedule.place(instr, "Z", 1)
    with pytest.raises(ValueError):
        schedule.place(instr, "A", 0)


def test_set_block_length_guards(schedule):
    instr = parse_instruction("add r1 = r2, r3")
    schedule.place(instr, "A", 2)
    schedule.set_block_length("A", 4)
    assert schedule.block_length("A") == 4
    with pytest.raises(ValueError):
        schedule.set_block_length("A", 1)


def test_total_and_weighted_length(schedule, diamond_fn):
    sched = Schedule([b.name for b in diamond_fn.blocks])
    instr = parse_instruction("add r1 = r2, r3")
    sched.place(instr, "A", 2)
    sched.place(instr.copy(), "B", 1)
    assert sched.total_length == 3
    assert sched.weighted_length(diamond_fn) == 2 * 100 + 1 * 60


def test_copies_of_follows_origin(schedule):
    original = parse_instruction("add r1 = r2, r3")
    copy = original.copy()
    schedule.place(original, "A", 1)
    schedule.place(copy, "B", 1)
    assert len(schedule.copies_of(original)) == 2


def test_instruction_count_excludes_nops(schedule):
    schedule.place(parse_instruction("nop.m"), "A", 1)
    schedule.place(parse_instruction("add r1 = r2, r3"), "A", 1)
    assert schedule.instruction_count == 1


def test_collapsed_blocks(schedule):
    schedule.place(parse_instruction("add r1 = r2, r3"), "A", 1)
    assert schedule.collapsed_blocks() == ["B"]


def test_sort_groups(schedule):
    i1 = parse_instruction("add r1 = r2, r3")
    i2 = parse_instruction("sub r4 = r1, r2")
    schedule.place(i2, "A", 1)
    schedule.place(i1, "A", 1)
    schedule.sort_groups(key=lambda i: i.uid)
    assert schedule.group("A", 1) == sorted([i1, i2], key=lambda i: i.uid)
