"""Alternative phase-2 objectives (paper Sec. 5.5 sketches)."""

import pytest

from repro.ir.parser import parse_function
from repro.sched.phase2 import OBJECTIVES, minimize_instruction_count
from repro.sched.scheduler import ScheduleFeatures, optimize_function

TEXT = """
.proc p2obj
.livein r32, r33
.liveout r8
.block A freq=100
  ld8 r10 = [r32] cls=heap
  add r11 = r32, r33
  xor r12 = r11, r33
  and r13 = r12, r11
  add r14 = r10, r13
  add r8 = r14, r12
  br.ret b0
.endp
"""


def _run(objective):
    fn = parse_function(TEXT)
    return optimize_function(
        fn, ScheduleFeatures(time_limit=30, phase2_objective=objective)
    )


@pytest.mark.parametrize("objective", OBJECTIVES)
def test_all_objectives_valid_and_length_preserving(objective):
    result = _run(objective)
    baseline = _run("instructions")
    assert result.verification.ok
    for block in result.output_schedule.block_order:
        assert result.output_schedule.block_length(
            block
        ) == baseline.output_schedule.block_length(block)


def test_register_pressure_defers_definitions():
    eager = _run("stalls")
    lazy = _run("register_pressure")

    def def_cycles(result):
        return sum(
            p.cycle
            for p in result.output_schedule.placements()
            if p.instr.regs_written() and not p.instr.is_branch
        )

    assert def_cycles(lazy) >= def_cycles(eager)


def test_stalls_maximizes_load_use_distance():
    spread = _run("stalls")
    packed = _run("register_pressure")

    def load_use_gap(result):
        sched = result.output_schedule
        load = next(p for p in sched.placements() if p.instr.is_load)
        use = next(
            p
            for p in sched.placements()
            if load.instr.dests[0] in p.instr.regs_read()
        )
        return use.cycle - load.cycle

    assert load_use_gap(spread) >= load_use_gap(packed)


def test_unknown_objective_rejected():
    with pytest.raises(ValueError):
        minimize_instruction_count(lambda: None, {}, objective="coffee")
