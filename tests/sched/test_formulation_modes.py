"""Tight vs compact length linking produce identical optima."""

import pytest

from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.spec_routines import build_spec_routine


@pytest.fixture(scope="module")
def variants():
    fn = build_spec_routine("xfree", scale=0.5)
    tight = optimize_function(
        fn,
        ScheduleFeatures(
            time_limit=45, max_hops=3, tight_lengths=True, two_phase=False
        ),
    )
    compact = optimize_function(
        fn,
        ScheduleFeatures(
            time_limit=45, max_hops=3, tight_lengths=False, two_phase=False
        ),
    )
    return tight, compact


def test_same_objective(variants):
    tight, compact = variants
    assert tight.ilp_size["objective"] == pytest.approx(
        compact.ilp_size["objective"]
    )


def test_compact_model_is_smaller(variants):
    tight, compact = variants
    assert compact.ilp_size["constraints"] < tight.ilp_size["constraints"]


def test_both_verify(variants):
    tight, compact = variants
    assert tight.verification.ok and compact.verification.ok
