"""End-to-end optimizer runs on small routines."""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import IlpScheduler, ScheduleFeatures, optimize_function
from repro.workloads.generator import RoutineSpec, generate_routine


@pytest.fixture(scope="module")
def diamond_result():
    from tests.conftest import DIAMOND_TEXT

    return optimize_function(
        parse_function(DIAMOND_TEXT), ScheduleFeatures(time_limit=30)
    )


def test_never_worse_than_input(diamond_result):
    assert (
        diamond_result.weighted_length_out <= diamond_result.weighted_length_in
    )
    assert diamond_result.static_reduction >= 0


def test_verification_passes(diamond_result):
    assert diamond_result.verification.ok
    assert diamond_result.verification.exhaustive


def test_ilp_size_reported(diamond_result):
    size = diamond_result.ilp_size
    assert size["variables"] > 0 and size["constraints"] > 0
    assert size["time"] >= 0


def test_report_is_readable(diamond_result):
    text = diamond_result.report()
    assert "weighted schedule length" in text
    assert "verification passed" in text


def test_input_function_not_mutated():
    from tests.conftest import DIAMOND_TEXT
    from repro.ir.printer import format_function

    fn = parse_function(DIAMOND_TEXT)
    before = format_function(fn)
    optimize_function(fn, ScheduleFeatures(time_limit=30))
    assert format_function(fn) == before


def test_bb_backend_matches_highs_objective():
    from tests.conftest import STRAIGHT_TEXT

    fn = parse_function(STRAIGHT_TEXT)
    highs = optimize_function(
        fn, ScheduleFeatures(time_limit=30, two_phase=False)
    )
    bb = optimize_function(
        fn, ScheduleFeatures(time_limit=60, backend="bb", two_phase=False)
    )
    assert highs.ilp_size["objective"] == pytest.approx(
        bb.ilp_size["objective"]
    )


@pytest.mark.parametrize("seed", [7, 23])
def test_generated_routines_verify(seed):
    spec = RoutineSpec(
        name="e2e", seed=seed, instructions=30, blocks=6, loops=1
    )
    fn = generate_routine(spec)
    result = optimize_function(fn, ScheduleFeatures(time_limit=45))
    assert result.verification.ok
    assert result.weighted_length_out <= result.weighted_length_in


def test_feature_baseline_config():
    features = ScheduleFeatures.baseline_ilp()
    assert not features.speculation
    assert not features.cyclic
    assert not features.partial_ready


def test_scheduler_object_reusable(diamond_result):
    from tests.conftest import STRAIGHT_TEXT

    scheduler = IlpScheduler(features=ScheduleFeatures(time_limit=30))
    first = scheduler.optimize(parse_function(STRAIGHT_TEXT))
    second = scheduler.optimize(parse_function(STRAIGHT_TEXT))
    assert first.weighted_length_out == second.weighted_length_out
