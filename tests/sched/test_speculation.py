"""Control and data speculation groups (Sec. 5.1)."""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.samples import fig4_speculation_sample


@pytest.fixture(scope="module")
def fig4_result():
    fn = parse_function(fig4_speculation_sample())
    return optimize_function(fn, ScheduleFeatures(time_limit=30))


def test_control_speculation_selected(fig4_result):
    assert fig4_result.spec_possible >= 1
    assert fig4_result.spec_used >= 1
    group = fig4_result.reconstruction.selected_groups[0]
    assert group.kind == "control"
    assert group.spec_load.mnemonic == "ld8.s"
    assert group.check.mnemonic == "chk.s"


def test_spec_load_hoisted_above_branch(fig4_result):
    schedule = fig4_result.output_schedule
    spec_placements = [
        p for p in schedule.placements() if p.instr.mnemonic == "ld8.s"
    ]
    assert any(p.block == "A" for p in spec_placements)


def test_check_stays_at_home(fig4_result):
    schedule = fig4_result.output_schedule
    checks = [p for p in schedule.placements() if p.instr.is_check]
    assert checks and all(p.block == "B" for p in checks)


def test_normal_load_replaced(fig4_result):
    schedule = fig4_result.output_schedule
    plain_loads = [
        p for p in schedule.placements() if p.instr.mnemonic == "ld8"
    ]
    assert not plain_loads


def test_recovery_stub_recorded(fig4_result):
    stubs = fig4_result.reconstruction.recovery_stubs
    assert len(stubs) == len(fig4_result.reconstruction.selected_groups)
    assert stubs[0].label.startswith("recover_")


def test_speculation_disabled_keeps_plain_load():
    fn = parse_function(fig4_speculation_sample())
    res = optimize_function(
        fn,
        ScheduleFeatures(
            time_limit=30, speculation=False, data_speculation=False
        ),
    )
    assert res.spec_possible == 0
    loads = [
        p for p in res.output_schedule.placements() if p.instr.mnemonic == "ld8"
    ]
    assert loads and all(p.block == "B" for p in loads)
    assert res.verification.ok


def test_data_speculation_over_ansi_distinct_store():
    text = """
.proc dataspec
.livein r32, r33, r40
.liveout r8
.block A freq=100
  st8 [r32] = r40 cls=stack
  ld8 r5 = [r33] cls=heap
  add r6 = r5, r40
  add r7 = r6, r5
  add r8 = r7, r6
  br.ret b0
.endp
"""
    fn = parse_function(text)
    res = optimize_function(
        fn, ScheduleFeatures(time_limit=30, speculation=True)
    )
    assert res.verification.ok
    kinds = {g.kind for g in res.spec_groups}
    assert "data" in kinds
    if res.spec_used:
        mnems = {p.instr.mnemonic for p in res.output_schedule.placements()}
        assert "ld8.a" in mnems and "chk.a" in mnems


def test_speculation_improves_fig4():
    fn = parse_function(fig4_speculation_sample())
    with_spec = optimize_function(fn, ScheduleFeatures(time_limit=30))
    without = optimize_function(
        fn,
        ScheduleFeatures(
            time_limit=30, speculation=False, data_speculation=False
        ),
    )
    assert with_spec.weighted_length_out <= without.weighted_length_out
