"""Greedy baseline: compaction and motion interplay."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.interp import Interpreter, initial_registers
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.sched.greedy_global import GreedyGlobalScheduler
from repro.sched.list_scheduler import ListScheduler
from repro.sched.regions import build_region

HOISTABLE = """
.proc hoistable
.livein r32, r33
.liveout r8
.block A freq=100
  add r10 = r32, r33
  cmp.eq p6, p7 = r10, r0
  (p6) br.cond C
.block B freq=90
  xor r11 = r32, r33
  and r12 = r11, r32
  or r13 = r12, r11
  add r8 = r13, r10
.block C freq=100
  st8 [r33] = r8 cls=glob
  br.ret b0
.endp
"""


def _setup(text):
    fn = parse_function(text)
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    region = build_region(fn, cfg, ddg, allow_predication=False)
    return fn, ddg, region


def test_hoist_shrinks_hot_block():
    fn, ddg, region = _setup(HOISTABLE)
    local = ListScheduler().schedule(fn, ddg)
    greedy = GreedyGlobalScheduler().schedule(fn, ddg, region)
    # xor r11 reads only live-ins: it can fill A's empty slots, and the
    # source block then re-compacts shorter.
    assert greedy.block_length("B") <= local.block_length("B")
    assert greedy.weighted_length(fn) < local.weighted_length(fn)
    moved = [
        p for p in greedy.placements() if p.block == "A" and p.instr.mnemonic == "xor"
    ]
    assert moved, "the independent xor should hoist into A"


def test_greedy_semantics_preserved_here():
    fn, ddg, region = _setup(HOISTABLE)
    greedy = GreedyGlobalScheduler().schedule(fn, ddg, region)
    interp = Interpreter()
    registers = initial_registers(fn, 3)
    want = interp.run_function(fn, registers, seed=3)
    got = interp.run_schedule(greedy, fn, registers, seed=3)
    assert got.block_trace == want.block_trace
    assert got.live_out_state(fn) == want.live_out_state(fn)
    assert got.memory == want.memory


def test_non_speculative_never_moves():
    fn, ddg, region = _setup(HOISTABLE)
    greedy = GreedyGlobalScheduler().schedule(fn, ddg, region)
    for placement in greedy.placements():
        if placement.instr.is_store or placement.instr.is_branch:
            original_block = next(
                b.name
                for b in fn.blocks
                if placement.instr in b.instructions
            )
            assert placement.block == original_block


def test_zero_passes_equals_local():
    fn, ddg, region = _setup(HOISTABLE)
    local = ListScheduler().schedule(fn, ddg)
    frozen = GreedyGlobalScheduler(max_passes=0).schedule(fn, ddg, region)
    assert frozen.weighted_length(fn) == local.weighted_length(fn)
