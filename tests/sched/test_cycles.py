"""Cycle-range sizing G(A)."""

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.sched.cycles import grow_lengths, lengths_from_input, upper_bound_lengths
from repro.sched.list_scheduler import ListScheduler
from repro.sched.regions import build_region


def _input(fn):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    schedule = ListScheduler().schedule(fn, ddg)
    region = build_region(fn, cfg, ddg)
    return schedule, region


def test_input_plus_reserve(diamond_fn):
    schedule, _ = _input(diamond_fn)
    lengths = lengths_from_input(schedule, diamond_fn, reserve=1)
    for block in diamond_fn.blocks:
        assert lengths[block.name] == schedule.block_length(block.name) + 1


def test_extra_blocks_get_more_headroom(diamond_fn):
    schedule, _ = _input(diamond_fn)
    lengths = lengths_from_input(schedule, diamond_fn, reserve=1, extra=("B",))
    assert lengths["B"] == schedule.block_length("B") + 2


def test_minimum_length_is_one(diamond_fn):
    schedule, _ = _input(diamond_fn)
    lengths = lengths_from_input(schedule, diamond_fn, reserve=0)
    assert all(v >= 1 for v in lengths.values())


def test_upper_bound_covers_candidates(diamond_fn):
    schedule, region = _input(diamond_fn)
    bounds = upper_bound_lengths(region)
    # Upper bound must accommodate every instruction that can move in.
    for block in diamond_fn.blocks:
        hosted = len(region.blocks_hosting(block.name))
        assert bounds[block.name] * 6 >= hosted


def test_grow_lengths(diamond_fn):
    schedule, _ = _input(diamond_fn)
    lengths = lengths_from_input(schedule, diamond_fn)
    grown = grow_lengths(lengths, bump=2)
    assert all(grown[k] == lengths[k] + 2 for k in lengths)
