"""Input preparation: cloning and speculation undo."""

from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.sched.prep import clone_function, undo_speculation


def test_clone_is_deep(diamond_fn):
    clone = clone_function(diamond_fn)
    clone.block("A").instructions[0].mnemonic = "sub"
    assert diamond_fn.block("A").instructions[0].mnemonic == "add"
    assert clone.name == diamond_fn.name


def test_undo_reverts_spec_load():
    text = """
.proc specin
.livein r32
.liveout r8
.block A freq=10
  ld8.s r5 = [r32] cls=heap
  add r6 = r32, 1
  chk.s r5, rec1
  add r8 = r5, r6
  br.ret b0
.endp
"""
    fn = parse_function(text)
    stats = undo_speculation(fn)
    assert stats.spec_loads_reverted == 1
    assert stats.checks_removed == 1
    mnemonics = [i.mnemonic for i in fn.all_instructions()]
    assert "ld8" in mnemonics
    assert "ld8.s" not in mnemonics
    assert "chk.s" not in mnemonics


def test_undo_rehomes_load_to_check_position():
    text = """
.proc rehome
.livein r32
.liveout r8
.block A freq=10
  ld8.s r5 = [r32] cls=heap
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond C
.block B freq=5
  chk.s r5, rec1
  add r8 = r5, 1
.block C freq=10
  br.ret b0
.endp
"""
    fn = parse_function(text)
    undo_speculation(fn)
    block_b = [i.mnemonic for i in fn.block("B").instructions]
    block_a = [i.mnemonic for i in fn.block("A").instructions]
    assert "ld8" in block_b  # moved to its non-speculative home
    assert "ld8" not in block_a and "ld8.s" not in block_a


def test_undo_without_speculation_is_noop(diamond_fn):
    before = format_function(diamond_fn)
    stats = undo_speculation(diamond_fn)
    assert stats.total == 0
    assert format_function(diamond_fn) == before
