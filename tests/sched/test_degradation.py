"""The graceful-degradation contract, end to end.

``optimize_function`` must never raise: every injected fault walks the
result down the fallback ladder to a documented quality tier, the emitted
schedule always verifies, and the reported ``quality``/``fallback_reason``
tell the truth about what happened.
"""

import pytest

from repro.ir.parser import parse_function
from repro.ir.printer import format_schedule
from repro.sched.scheduler import (
    QUALITY_TIERS,
    ScheduleFeatures,
    optimize_function,
)
from repro.sched.verifier import verify_schedule
from repro.tools import faults
from tests.conftest import DIAMOND_TEXT

FEATURES = ScheduleFeatures(time_limit=30)


def run(spec, **overrides):
    fn = parse_function(DIAMOND_TEXT)
    features = (
        ScheduleFeatures(**{"time_limit": 30, **overrides})
        if overrides
        else FEATURES
    )
    with faults.inject(spec):
        return optimize_function(fn, features)


# Documented fault -> tier mapping.  Notes:
#  * phase-1 timeout has no incumbent to fall back on -> input schedule;
#  * phase-1 infeasible exhausts the cycle-range growths -> input schedule;
#  * a phase-2 timeout still returns the seeded phase-1 point as an
#    unproven incumbent, so the tier is "incumbent", not "phase1" — the
#    "phase1" tier needs phase 2 to produce *nothing* (infeasible);
#  * a corrupted phase-1 solution is repaired by the phase-2 re-solve
#    (the pinned-length model is rebuilt from intact length indicators),
#    so with two_phase the run still ends "optimal" — see
#    test_rollback_* for the unrepaired case.
TIER_CASES = [
    ("solve.phase1=timeout", "fallback_input", "no_incumbent"),
    ("solve.phase1=infeasible", "fallback_input", "infeasible"),
    ("solve.phase1=incumbent", "incumbent", "unproven"),
    ("solve.phase1=corrupt", "optimal", None),
    ("solve.phase2=infeasible", "phase1", "no_solution"),
    ("solve.phase2=timeout", "incumbent", "unproven"),
    ("bundle=error", "fallback_input", "retries_exhausted"),
    ("bundle=error:1,solve.cut_resolve=timeout", "incumbent", "unproven"),
    ("verify=error", "fallback_input", "rejected"),
]


@pytest.mark.parametrize("spec,tier,kind", TIER_CASES)
def test_fault_yields_documented_tier(spec, tier, kind):
    result = run(spec)
    assert result.quality == tier
    if kind is None:
        assert result.fallback_reason is None
    else:
        assert result.fallback_reason.kind == kind
    # Whatever the tier, the emitted schedule passed verification.
    assert result.verification is not None and result.verification.ok
    # Degraded results carry no ILP artifacts to mis-read.
    if tier == "fallback_input":
        assert result.solution is None
        assert result.reconstruction is None
        assert result.spec_used == 0


def test_no_fault_is_optimal():
    result = run(None)
    assert result.quality == "optimal"
    assert result.fallback_reason is None
    assert result.verification.ok


@pytest.mark.parametrize(
    "spec",
    [
        "solve.phase1=timeout,solve.cut_resolve=timeout,solve.phase2=timeout,"
        "bundle=error,verify=error",
        "solve.phase1=infeasible,bundle=error,verify=error",
        "solve.phase1=corrupt,solve.phase2=infeasible,verify=error",
        "solve.phase1=incumbent,solve.phase2=incumbent",
    ],
)
def test_fault_combinations_never_raise(spec):
    """All faults at once must still produce a verified schedule."""
    result = run(spec)
    assert result.quality in QUALITY_TIERS
    assert result.verification is not None and result.verification.ok
    # Independently re-verify fallbacks with a fresh verifier.  (ILP
    # schedules need the reconstruction + the ILP's edge exemptions to
    # verify, so for them the pipeline's own report is the oracle.)
    if result.reconstruction is None:
        report = verify_schedule(result.output_schedule, result.region)
        assert report.ok, report.problems


# -- verified rollback --------------------------------------------------------


def test_rollback_is_byte_identical_to_input_schedule():
    baseline = run(None)
    rolled = run("verify=error")
    assert rolled.quality == "fallback_input"
    assert rolled.fallback_reason.site == "verify"
    assert rolled.fallback_reason.kind == "rejected"
    # The fallback *is* the input schedule object, not a lookalike...
    assert rolled.output_schedule is rolled.input_schedule
    # ...and renders byte-identically to an untouched run's input schedule.
    assert format_schedule(rolled.output_schedule, rolled.fn) == format_schedule(
        baseline.input_schedule, baseline.fn
    )
    assert "rolled back" in " ".join(rolled.messages)


def test_corrupt_solution_without_phase2_rolls_back():
    """With phase 2 off nothing repairs a corrupted solve, so the verifier
    must catch it and the rollback must kick in."""
    result = run("solve.phase1=corrupt", two_phase=False)
    assert result.quality == "fallback_input"
    assert result.fallback_reason.site == "verify"
    assert result.fallback_reason.kind == "rejected"
    assert result.output_schedule is result.input_schedule
    assert result.verification.ok  # the fallback was re-verified clean


def test_rollback_can_be_disabled_for_debugging():
    result = run("verify=error", rollback_on_verify_failure=False)
    assert result.quality != "fallback_input"
    assert result.verification is not None and not result.verification.ok


# -- deadline budget ----------------------------------------------------------


def test_zero_budget_degrades_to_input_schedule():
    result = run(None, time_limit=0.0)
    assert result.quality == "fallback_input"
    assert result.fallback_reason.kind == "deadline"
    assert result.verification.ok


def test_report_mentions_quality_and_reason():
    result = run("verify=error")
    report = result.report()
    assert "quality: fallback_input" in report
    assert "verify:rejected" in report
