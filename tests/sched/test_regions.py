"""Destination-block sets Θ(n)/Θ_spec(n) and predication extension."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.sched.regions import build_region


def _region(fn, **kwargs):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return build_region(fn, cfg, ddg, **kwargs)


def _by_mnemonic(region, mnemonic, block=None):
    for instr in region.instructions:
        if instr.mnemonic.startswith(mnemonic) and (
            block is None or region.source_block[instr] == block
        ):
            return instr
    raise AssertionError(f"no {mnemonic} in region")


def test_speculative_instruction_full_range(diamond_fn):
    region = _region(diamond_fn)
    add14 = _by_mnemonic(region, "add", "A")  # writes exclusive r14
    assert region.speculative[add14]
    assert region.theta[add14] == {"A", "B", "C"}


def test_load_is_non_speculative(diamond_fn):
    region = _region(diamond_fn, allow_predication=False)
    load = _by_mnemonic(region, "ld8")
    assert not region.speculative[load]
    # B dominates nothing else and is postdominated by nothing above it.
    assert region.theta[load] == {"B"}
    # The speculative candidate set still spans the related blocks.
    assert region.theta_spec[load] == {"A", "B", "C"}


def test_store_pinned_by_dominance(diamond_fn):
    region = _region(diamond_fn, allow_predication=False)
    store = _by_mnemonic(region, "st8")
    # C is control-equivalent to A: upward motion to A is non-speculative...
    assert "A" in region.theta[store]
    # ...but B neither dominates nor postdominates C? B is *a* predecessor
    # not postdominated-by-C-excluded: C postdominates B, so B qualifies.
    assert "B" in region.theta[store]


def test_branches_pinned(diamond_fn):
    region = _region(diamond_fn)
    branch = _by_mnemonic(region, "br.cond")
    assert branch in region.pinned
    assert region.theta[branch] == {"A"}
    # The a-domain still spans the related set for precedence constraints.
    assert region.theta_spec[branch] == {"A", "B", "C"}


def test_freq_cap_limits_speculative_loads():
    text = """
.proc cap
.livein r32
.liveout r8
.block HOT freq=1000
  add r5 = r32, 1
  cmp.eq p6, p7 = r5, r0
  (p6) br.cond COLD2
.block COLD freq=10
  ld8 r8 = [r32]
.block COLD2 freq=1000
  br.ret b0
.endp
"""
    fn = parse_function(text)
    region = _region(fn)
    # The plain load is non-speculative anyway; check the Θ_spec-derived
    # candidate range through the speculation module instead.
    from repro.sched.speculation import _speculative_theta

    load = _by_mnemonic(region, "ld8")
    spec_range = _speculative_theta(region, load, "COLD")
    assert "HOT" not in spec_range  # 1000 > 5 * 10
    assert "COLD" in spec_range


def test_predication_extends_theta(diamond_fn):
    region = _region(diamond_fn, allow_predication=True)
    load = _by_mnemonic(region, "ld8")
    # With the branch guarded by p6 (complement p7), the load may move to A
    # under predicate p7 (the fall-through guard).
    if "A" in region.theta[load]:
        guard = region.guard_for[(load, "A")]
        assert guard.name in ("p6", "p7")
        assert (load, "A") in region.guard_compare


def test_backedge_variant_cannot_leave_loop(loop_fn):
    region = _region(loop_fn)
    # ld8 r21 = [r15]: r15 is updated by adds in the same loop.
    load = _by_mnemonic(region, "ld8")
    assert load in region.backedge_variant
    assert "PRE" not in region.theta[load]


def test_blocks_hosting_inverse(diamond_fn):
    region = _region(diamond_fn)
    hosted = region.blocks_hosting("A")
    assert all("A" in region.theta[i] for i in hosted)


def test_blocks_hosting_matches_linear_scan(diamond_fn):
    region = _region(diamond_fn)
    for name in ("A", "B", "C"):
        scan = [i for i in region.instructions if name in region.theta[i]]
        assert region.blocks_hosting(name) == scan


def test_blocks_hosting_invalidation(diamond_fn):
    region = _region(diamond_fn)
    victim = region.blocks_hosting("C")[0]
    region.blocks_hosting("A")  # build the index
    region.theta[victim].discard("C")
    # The index is lazy and stale until explicitly invalidated.
    region.invalidate_hosting_index()
    assert victim not in region.blocks_hosting("C")
