"""The lazy bundling-constraint loop (paper Sec. 4.2).

Dispersal-feasible groups can still be unencodable — two F-unit
instructions plus a movl need three bundles. The driver detects the
bundler's rejection, adds the paper's bundling constraint
Σ_{n∈S} x ≤ |S|−1 and re-solves.
"""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function

TEXT = """
.proc fbound
.livein r32, f5, f6, f8, f9
.liveout r8, f4, f7
.block A freq=100
  fma f4 = f5, f6
  fma f7 = f8, f9
  movl r10 = 99999
  add r8 = r10, r32
  br.ret b0
.endp
"""


@pytest.fixture(scope="module")
def result():
    fn = parse_function(TEXT)
    return optimize_function(fn, ScheduleFeatures(time_limit=30))


def test_cut_was_added_and_resolved(result):
    assert any("bundling constraint" in m for m in result.messages)
    assert result.verification.ok


def test_forbidden_trio_split(result):
    schedule = result.output_schedule
    for cycle, group in schedule.cycles_of("A").items():
        mnemonics = sorted(i.mnemonic for i in group if not i.is_branch)
        assert mnemonics.count("fma") < 2 or "movl" not in mnemonics


def test_bundles_encode(result):
    # bundle_schedule already ran inside the driver without raising.
    assert result.bundles_out.total_bundles >= 2
