"""ILP-based modulo scheduling (software pipelining)."""

import pytest

from repro.errors import SchedulingError
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.sched.swp import (
    ModuloScheduler,
    build_modulo_edges,
    recurrence_mii,
)
from repro.workloads.samples import fig5_cyclic_sample


def _pipeline(text_or_fn):
    fn = (
        parse_function(text_or_fn)
        if isinstance(text_or_fn, str)
        else text_or_fn
    )
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return fn, cfg, ddg


@pytest.fixture(scope="module")
def fig5_schedule():
    fn, cfg, ddg = _pipeline(fig5_cyclic_sample())
    loop = cfg.loops[0]
    return ModuloScheduler().schedule_loop(fn, cfg, ddg, loop), fn, ddg, loop


def test_ii_equals_recurrence_bound(fig5_schedule):
    sched, _fn, _ddg, _loop = fig5_schedule
    # fig5's recurrence: add(1) -> ld(2) -> add(1) with distance 1 -> II 4.
    assert sched.mii_recurrence == 4
    assert sched.ii == 4
    assert sched.ii >= sched.mii_resource


def test_all_body_instructions_scheduled(fig5_schedule):
    sched, fn, _ddg, loop = fig5_schedule
    body = [
        i
        for i in fn.block(loop.header).instructions
        if not i.is_branch and not i.is_nop
    ]
    assert set(sched.start_times) == set(body)


def test_dependences_respected_modulo(fig5_schedule):
    sched, fn, ddg, loop = fig5_schedule
    body = list(sched.start_times)
    edges = build_modulo_edges(fn, loop, body, ddg)
    for edge in edges:
        if edge.src not in sched.start_times or edge.dst not in sched.start_times:
            continue
        gap = sched.start_times[edge.dst] - sched.start_times[edge.src]
        assert gap >= edge.latency - edge.distance * sched.ii


def test_kernel_rows_dispersal_feasible(fig5_schedule):
    from repro.machine.itanium2 import ITANIUM2

    sched, _fn, _ddg, _loop = fig5_schedule
    for row in sched.kernel():
        units = [i.unit for i, _stage in row]
        assert ITANIUM2.group_feasible(units)


def test_prologue_epilogue_shapes(fig5_schedule):
    sched, _fn, _ddg, _loop = fig5_schedule
    assert sched.stages == 2
    # stages-1 fill iterations, each contributing the early stages.
    assert len(sched.prologue()) >= 1
    assert len(sched.epilogue()) >= 1


def test_swp_beats_acyclic_loop_length(fig5_schedule):
    """Software pipelining reaches below what cyclic motion can (Sec. 8)."""
    from repro.sched.scheduler import ScheduleFeatures, optimize_function

    sched, _fn, _ddg, _loop = fig5_schedule
    fn = parse_function(fig5_cyclic_sample())
    acyclic = optimize_function(fn, ScheduleFeatures(time_limit=45))
    assert sched.ii < acyclic.output_schedule.block_length("LOOP")


def test_resource_bound_loop():
    # 9 independent loads: ResMII = ceil(9/4) = 3 with no recurrence.
    lines = [".proc resloop", ".livein r32", ".liveout r8",
             ".block PRE freq=1", "  add r15 = r32, 0",
             ".block LOOP freq=100 succ=LOOP:0.9,POST:0.1"]
    for i in range(9):
        lines.append(f"  ld8 r{40 + i} = [r32+{8 * i}] cls=heap")
    lines += ["  cmp.ne p6, p7 = r40, r0", "  (p6) br.cond LOOP",
              ".block POST freq=1", "  add r8 = r41, 0", "  br.ret b0",
              ".endp"]
    fn, cfg, ddg = _pipeline("\n".join(lines))
    loop = cfg.loops[0]
    sched = ModuloScheduler().schedule_loop(fn, cfg, ddg, loop)
    assert sched.mii_resource == 3
    assert sched.ii == 3


def test_multi_block_loop_rejected(loop_fn):
    text = """
.proc twoblk
.block H freq=100
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond E
.block B freq=90
  add r5 = r6, r7
  br H
.block E freq=10
  br.ret b0
.endp
"""
    fn, cfg, ddg = _pipeline(text)
    loop = cfg.loops[0]
    with pytest.raises(SchedulingError):
        ModuloScheduler().schedule_loop(fn, cfg, ddg, loop)


def test_recurrence_mii_self_edge():
    text = """
.proc selfrec
.livein r32
.liveout r8
.block PRE freq=1
  add r15 = r32, 0
.block LOOP freq=100 succ=LOOP:0.9,POST:0.1
  ld8 r20 = [r15] cls=heap
  add r15 = r20, r32
  cmp.ne p6, p7 = r20, r0
  (p6) br.cond LOOP
.block POST freq=1
  add r8 = r15, 0
  br.ret b0
.endp
"""
    fn, cfg, ddg = _pipeline(text)
    loop = cfg.loops[0]
    body = [
        i
        for i in fn.block(loop.header).instructions
        if not i.is_branch and not i.is_nop
    ]
    edges = build_modulo_edges(fn, loop, body, ddg)
    # ld(2) -> add(1) -> ld distance 1: RecMII = 3.
    assert recurrence_mii(body, edges) == 3
