"""Region decomposition: cut legality, stitching, fallbacks, caching.

The decomposed pipeline (:mod:`repro.sched.decompose`) must (a) only
cut where the restriction argument holds — never inside a loop, never
across a profitable-motion frequency gradient; (b) produce stitched
schedules the whole-function verifier accepts; (c) abandon itself and
fall back to the whole-function ILP on any failure, including an
injected ``decompose.stitch`` fault; and (d) leave routines that do not
decompose (below threshold, no legal cut) byte-identical to a
``decompose=False`` run.
"""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.sched.decompose import find_cut_blocks, plan_partitions
from repro.sched.regions import build_region
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.tools import faults
from repro.tools.optimize import _emit_function
from repro.tools.parallel import partition_workers
from repro.workloads.generator import MultiRegionSpec, generate_multi_region

FEATURES = ScheduleFeatures(time_limit=60, max_hops=4)


def _region(fn, features=FEATURES):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return build_region(
        fn,
        cfg,
        ddg,
        max_hops=features.max_hops,
        freq_cap=features.freq_cap,
        allow_predication=features.predication,
    )


# Equal-frequency chain: every boundary is frequency-neutral, so every
# non-entry block is a legal cut.
CHAIN_TEXT = """
.proc chain
.livein r32, r33
.liveout r8
.block A freq=100
  add r10 = r32, r33
  add r11 = r10, r32
.block B freq=100
  add r12 = r11, r33
  shl r13 = r12, 2
.block C freq=100
  add r8 = r13, r10
  br.ret b0
.endp
"""

# Descending-frequency chain: control-equivalent blocks, so Θ of the
# movable instructions in A spans the colder B — the boundary loses
# profitable (downward) motion and must be vetoed.
COLD_CHAIN_TEXT = """
.proc coldchain
.livein r32, r33
.liveout r8
.block A freq=100
  add r10 = r32, r33
  add r11 = r10, r32
.block B freq=10
  add r8 = r11, r33
  br.ret b0
.endp
"""

# A two-block loop: the back edge spans the L1/L2 boundary, so no cut
# may fall between the loop's blocks.
LOOP_TEXT = """
.proc twoloop
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r15 = r32, 0
.block L1 freq=1000 succ=L2:1.0
  ld8 r21 = [r15] cls=heap
  add r22 = r21, r33
.block L2 freq=1000 succ=L1:0.9,POST:0.1
  adds r15 = 8, r15
  cmp.ne p6, p7 = r22, r0
  (p6) br.cond L1
.block POST freq=10
  add r8 = r22, 0
  br.ret b0
.endp
"""


def test_equal_frequency_chain_cuts_everywhere():
    region = _region(parse_function(CHAIN_TEXT))
    assert find_cut_blocks(region, FEATURES) == ["B", "C"]


def test_frequency_gradient_vetoes_cut():
    region = _region(parse_function(COLD_CHAIN_TEXT))
    assert find_cut_blocks(region, FEATURES) == []
    assert plan_partitions(region, FEATURES) is None


def test_no_cut_inside_loop():
    region = _region(parse_function(LOOP_TEXT))
    assert "L2" not in find_cut_blocks(region, FEATURES)


def test_plan_respects_size_floor():
    region = _region(parse_function(CHAIN_TEXT))
    # floor = 8 // 4 = 2 instructions: both boundaries are takeable and
    # the 2-instruction tail merges backwards only when undersized.
    features = ScheduleFeatures(
        time_limit=60, max_hops=4, decompose_min_instructions=8
    )
    plan = plan_partitions(region, features)
    assert plan == [["A"], ["B"], ["C"]] or plan == [["A"], ["B", "C"]]
    # A floor above the whole routine forces a single partition -> None.
    features = ScheduleFeatures(
        time_limit=60, max_hops=4, decompose_min_instructions=400
    )
    assert plan_partitions(region, features) is None


# -- multi-region workload ----------------------------------------------------
_SMALL = MultiRegionSpec(
    name="mrtest", segments=4, segment_instructions=12, segment_blocks=4,
    seed=5,
)


def _small_features(**overrides):
    kwargs = dict(
        time_limit=90, max_hops=4, decompose_min_instructions=24
    )
    kwargs.update(overrides)
    return ScheduleFeatures(**kwargs)


def test_multi_region_routine_has_three_cut_points():
    fn = generate_multi_region(_SMALL)
    region = _region(fn)
    cuts = find_cut_blocks(region, FEATURES)
    # The satellite contract: >= 3 articulation points (one per
    # segment join, segments=4 gives three corridors).
    assert len(cuts) >= 3
    joins = {name for name in cuts if "J" in name}
    assert len(joins) >= 3


def test_decomposed_end_to_end_verifies():
    fn = generate_multi_region(_SMALL)
    result = optimize_function(fn, _small_features())
    assert any("decomposed into" in m for m in result.messages), (
        result.messages
    )
    assert result.verification.ok, result.verification.problems[:3]
    assert result.weighted_length_out <= result.weighted_length_in + 1e-9
    assert result.bundles_out.total_bundles >= 1


def test_stitch_fault_falls_back_to_whole_function():
    fn = generate_multi_region(_SMALL)
    with faults.inject("decompose.stitch=error:1"):
        result = optimize_function(fn, _small_features())
    assert any("decomposition abandoned" in m for m in result.messages), (
        result.messages
    )
    assert not any("decomposed into" in m for m in result.messages)
    assert result.verification.ok, result.verification.problems[:3]


def _normalized_emit(result):
    """Emitted text with instruction-uid-derived labels canonicalized.

    Recovery-stub labels embed the speculative load's global uid, which
    differs between two parses of the same text; everything else in the
    emission is uid-free.
    """
    import re

    return re.sub(r"recover_\d+", "recover_N", _emit_function(result))


def test_no_cut_routine_identical_to_decompose_off():
    fn_text = COLD_CHAIN_TEXT
    features_on = ScheduleFeatures(
        time_limit=60, max_hops=4, decompose_min_instructions=1
    )
    features_off = ScheduleFeatures(
        time_limit=60, max_hops=4, decompose=False
    )
    on = optimize_function(parse_function(fn_text), features_on)
    off = optimize_function(parse_function(fn_text), features_off)
    assert _normalized_emit(on) == _normalized_emit(off)
    assert on.quality == off.quality


def test_below_threshold_identical_to_decompose_off(diamond_fn):
    import copy

    features_off = ScheduleFeatures(time_limit=60, decompose=False)
    on = optimize_function(copy.deepcopy(diamond_fn), ScheduleFeatures(
        time_limit=60
    ))
    off = optimize_function(diamond_fn, features_off)
    assert _normalized_emit(on) == _normalized_emit(off)


# -- per-partition caching ----------------------------------------------------
def test_partition_cache_hits_on_second_solve(tmp_path):
    from repro.serve.store import ScheduleStore

    store = ScheduleStore(tmp_path / "cache")
    features = _small_features()

    first = optimize_function(
        generate_multi_region(_SMALL), features, partition_store=store
    )
    assert any("decomposed into" in m for m in first.messages)
    misses = first.trace.counters.get("partition_cache_misses", 0)
    assert misses >= 2  # every partition probed cold

    second = optimize_function(
        generate_multi_region(_SMALL), features, partition_store=store
    )
    hits = second.trace.counters.get("partition_cache_hits", 0)
    assert hits == misses  # every partition seeded from the store
    assert second.verification.ok
    assert any("decomposed into" in m for m in second.messages)


def test_store_failure_is_not_a_routine_failure(tmp_path):
    from repro.serve.store import ScheduleStore

    store = ScheduleStore(tmp_path / "cache")
    with faults.inject("serve.store_io=error"):
        result = optimize_function(
            generate_multi_region(_SMALL),
            _small_features(),
            partition_store=store,
        )
    assert result.verification.ok


# -- fan-out sizing -----------------------------------------------------------
def test_partition_workers_single():
    assert partition_workers(0) == 1
    assert partition_workers(1) == 1


def test_partition_workers_override(monkeypatch):
    monkeypatch.setenv("REPRO_PARTITION_WORKERS", "2")
    assert partition_workers(8) == 2
    monkeypatch.setenv("REPRO_PARTITION_WORKERS", "64")
    assert partition_workers(4) == 4  # clamped to the partition count
    monkeypatch.setenv("REPRO_PARTITION_WORKERS", "bogus")
    assert partition_workers(4) >= 1  # malformed override is ignored


def test_partition_workers_collapse_inside_pool(monkeypatch):
    monkeypatch.delenv("REPRO_PARTITION_WORKERS", raising=False)
    monkeypatch.setenv("REPRO_IN_POOL_WORKER", "1")
    assert partition_workers(8) == 1
