"""The path-based schedule verifier (Theorem 1 checker, Sec. 7)."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.sched.list_scheduler import ListScheduler
from repro.sched.regions import build_region
from repro.sched.schedule import Schedule
from repro.sched.verifier import verify_schedule


def _setup(fn):
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    region = build_region(fn, cfg, ddg, allow_predication=False)
    return region, ddg


def test_heuristic_schedule_verifies(diamond_fn):
    """Sec. 7: the checker validates schedules produced by heuristics."""
    region, ddg = _setup(diamond_fn)
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    report = verify_schedule(schedule, region)
    assert report.ok
    assert report.exhaustive


def test_missing_instruction_detected(diamond_fn):
    region, ddg = _setup(diamond_fn)
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    # Remove one placement of a non-branch instruction.
    group = schedule.group("B", 1)
    removed = group.pop(0)
    report = verify_schedule(schedule, region)
    assert not report.ok
    assert any(f"instruction {removed.uid}" in p for p in report.problems)


def test_latency_violation_detected(straight_fn):
    region, ddg = _setup(straight_fn)
    schedule = Schedule([b.name for b in straight_fn.blocks])
    # Pack everything into consecutive cycles ignoring the load latency.
    for idx, instr in enumerate(straight_fn.block("A").instructions):
        schedule.place(instr, "A", idx + 1)
    report = verify_schedule(schedule, region)
    assert not report.ok
    assert any("needs" in p for p in report.problems)


def test_resource_violation_detected(diamond_fn):
    region, ddg = _setup(diamond_fn)
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    # Cram five extra fake loads into one cycle of A.
    from repro.ir.parser import parse_instruction

    group_cycle = 1
    for i in range(5):
        schedule.place(
            parse_instruction(f"ld8 r{60 + i} = [r32]"), "A", group_cycle
        )
    report = verify_schedule(schedule, region)
    assert any("dispersal" in p for p in report.problems)


def test_branch_not_last_detected(diamond_fn):
    region, ddg = _setup(diamond_fn)
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    schedule.set_block_length("A", schedule.block_length("A") + 1)
    report = verify_schedule(schedule, region)
    assert any("block length" in p for p in report.problems)


def test_double_copy_in_block_detected(diamond_fn):
    region, ddg = _setup(diamond_fn)
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    load = next(i for i in diamond_fn.block("B").instructions if i.is_load)
    schedule.place(load.copy(), "B", schedule.block_length("B"))
    report = verify_schedule(schedule, region)
    assert any("twice" in p for p in report.problems)


def test_speculative_placement_of_store_detected(diamond_fn):
    region, ddg = _setup(diamond_fn)
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    store = next(i for i in diamond_fn.block("C").instructions if i.is_store)
    schedule.place(store.copy(), "B", 1)
    report = verify_schedule(schedule, region)
    assert any(
        "not re-executable" in p or "speculatively" in p
        for p in report.problems
    )
