"""The Sec. 5.1 speculation cost model (optional extension)."""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.samples import fig4_speculation_sample


def test_zero_cost_is_paper_default():
    fn = parse_function(fig4_speculation_sample())
    result = optimize_function(fn, ScheduleFeatures(time_limit=30))
    assert result.spec_used >= 1  # speculation freely chosen


def test_prohibitive_cost_suppresses_speculation():
    fn = parse_function(fig4_speculation_sample())
    result = optimize_function(
        fn, ScheduleFeatures(time_limit=30, speculation_cost=1e6)
    )
    assert result.verification.ok
    assert result.spec_used == 0
    # Without speculation the schedule is the longer one.
    baseline = optimize_function(fn, ScheduleFeatures(time_limit=30))
    assert result.weighted_length_out >= baseline.weighted_length_out


def test_cost_uses_miss_annotation():
    """A load annotated as frequently-missing pays a higher penalty."""
    cheap_text = fig4_speculation_sample()
    risky_text = cheap_text.replace("cls=heap", "cls=heap miss=0.9")
    # With a moderate weight, the risky load's penalty outweighs the
    # one-cycle gain while the default (miss=0.01) load's does not.
    weight = 30.0
    cheap = optimize_function(
        parse_function(cheap_text),
        ScheduleFeatures(time_limit=30, speculation_cost=weight),
    )
    risky = optimize_function(
        parse_function(risky_text),
        ScheduleFeatures(time_limit=30, speculation_cost=weight),
    )
    assert cheap.spec_used >= risky.spec_used
