"""Speculation groups with UD-chain movs (the Fig. 4 right-hand scheme)."""

import pytest

from repro.ir.interp import Interpreter, initial_registers
from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function

# The load writes r8 which is routine-live-out AND has another definition
# (UD chain): its speculative version must go through a temporary plus a
# mov, exactly the Fig. 4 transformation with the temp register.
TEXT = """
.proc movgroup
.livein r32, r33, r40
.liveout r8
.block A freq=100
  add r14 = r32, r33
  cmp.eq p6, p7 = r14, r0
  mov r8 = r40
  (p6) br.cond C
.block B freq=90
  ld8 r8 = [r14] cls=heap
  add r15 = r8, r32
  add r16 = r15, r40
  st8 [r33+16] = r16 cls=stack
.block C freq=100
  st8 [r33+8] = r8 cls=stack
  br.ret b0
.endp
"""


@pytest.fixture(scope="module")
def result():
    return optimize_function(
        parse_function(TEXT), ScheduleFeatures(time_limit=45)
    )


def test_group_uses_temp_and_mov(result):
    groups = [g for g in result.spec_groups if g.mov is not None]
    assert groups, "the live-out UD-chain load needs the temp+mov scheme"
    group = groups[0]
    assert group.spec_load.dests[0] != group.original.dests[0]
    assert group.mov.dests == group.original.dests


def test_verifies(result):
    assert result.verification.ok, result.verification.problems[:4]


def test_semantics_preserved(result):
    interp = Interpreter(max_blocks=400)
    for seed in (0, 1, 2, 3, 4):
        registers = initial_registers(result.fn, seed)
        want = interp.run_function(result.fn, registers, seed=seed)
        got = interp.run_schedule(
            result.output_schedule, result.fn, registers, seed=seed
        )
        assert got.block_trace == want.block_trace
        assert got.live_out_state(result.fn) == want.live_out_state(result.fn)
        assert got.memory == want.memory


def test_mov_scheduled_when_group_selected(result):
    for group in result.spec_groups:
        if group.mov is None:
            continue
        selected = result.solution.value_of(group.usespec) >= 1
        placed_movs = [
            p
            for p in result.output_schedule.placements()
            if p.instr.root_origin is group.mov
        ]
        assert bool(placed_movs) == selected
