"""Software-pipelining code generation (modulo variable expansion)."""

import pytest

from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.interp import Interpreter, initial_registers
from repro.ir.liveness import compute_liveness
from repro.ir.parser import parse_function
from repro.sched.swp import ModuloScheduler
from repro.sched.swp_materialize import (
    materialize_counted_loop,
    recognize_counted_loop,
)

COUNTED_LOOP = """
.proc counted
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r15 = r32, 0
  mov r9 = 0
.block LOOP freq=130 succ=LOOP:0.92,POST:0.08
  add r20 = r15, r33
  ld8 r21 = [r20] cls=heap
  add r15 = r21, r32
  xor r23 = r21, r33
  and r24 = r23, r21
  or r25 = r24, r23
  st8 [r33+8] = r25 cls=glob
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, 13
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r15, 0
  br.ret b0
.endp
"""


def _pipeline(text):
    fn = parse_function(text)
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    return fn, cfg, ddg


@pytest.fixture(scope="module")
def materialized():
    fn, cfg, ddg = _pipeline(COUNTED_LOOP)
    loop = cfg.loops[0]
    msched = ModuloScheduler().schedule_loop(fn, cfg, ddg, loop)
    out = materialize_counted_loop(fn, cfg, ddg, loop, msched)
    assert out is not None
    return fn, out, msched


def test_recognizer_matches_counted_pattern():
    fn, cfg, _ddg = _pipeline(COUNTED_LOOP)
    counted = recognize_counted_loop(fn, cfg.loops[0])
    assert counted is not None
    assert counted.trips == 13
    assert counted.counter.name == "r9"


def test_recognizer_rejects_uncounted():
    from repro.workloads.samples import fig5_cyclic_sample

    fn, cfg, _ddg = _pipeline(fig5_cyclic_sample())
    assert recognize_counted_loop(fn, cfg.loops[0]) is None


def test_structure(materialized):
    _fn, out, _msched = materialized
    names = [b.name for b in out.blocks]
    assert "LOOP__pro" in names and "LOOP__ker" in names and "LOOP__epi" in names
    kernel = out.block("LOOP__ker")
    assert kernel.terminator.target == "LOOP__ker"
    out.validate()


def test_semantics_preserved(materialized):
    fn, out, _msched = materialized
    interp = Interpreter(max_blocks=2000)
    for seed in (0, 1, 2, 3):
        registers = initial_registers(fn, seed)
        want = interp.run_function(fn, registers, seed=seed)
        got = interp.run_function(out, registers, seed=seed)
        assert want.returned and got.returned
        assert got.live_out_state(out) == want.live_out_state(fn)
        assert got.memory == want.memory


def test_kernel_executes_u_iterations_per_pass(materialized):
    fn, out, msched = materialized
    interp = Interpreter(max_blocks=2000)
    result = interp.run_function(out, initial_registers(fn, 0))
    kernel_passes = result.block_trace.count("LOOP__ker")
    original = interp.run_function(fn, initial_registers(fn, 0))
    loop_iterations = original.block_trace.count("LOOP")
    assert kernel_passes >= 1
    assert kernel_passes < loop_iterations  # overlap compresses control


def test_throughput_improves(materialized):
    """The pipelined version retires the loop in fewer instruction slots
    of critical path: its kernel II is below the acyclic body length."""
    fn, _out, msched = materialized
    assert msched.ii < 13  # sanity
    assert msched.ii == max(msched.mii_resource, msched.mii_recurrence)
