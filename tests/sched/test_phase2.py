"""Phase 2: instruction-count minimization at fixed block lengths."""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function

# A routine where phase 1 may freely duplicate: the speculative add can be
# placed on both sides of the diamond without hurting the length optimum.
TEXT = """
.proc twophase
.livein r32, r33
.liveout r8
.block A freq=100
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond C
.block B freq=50
  add r10 = r32, r33
  add r11 = r10, r32
.block C freq=100
  add r8 = r32, r33
  br.ret b0
.endp
"""


def test_phase2_preserves_lengths():
    fn = parse_function(TEXT)
    one = optimize_function(fn, ScheduleFeatures(time_limit=30, two_phase=False))
    two = optimize_function(fn, ScheduleFeatures(time_limit=30, two_phase=True))
    for block in one.output_schedule.block_order:
        assert one.output_schedule.block_length(
            block
        ) == two.output_schedule.block_length(block)


def test_phase2_never_increases_instructions():
    fn = parse_function(TEXT)
    one = optimize_function(fn, ScheduleFeatures(time_limit=30, two_phase=False))
    two = optimize_function(fn, ScheduleFeatures(time_limit=30, two_phase=True))
    assert (
        two.output_schedule.instruction_count
        <= one.output_schedule.instruction_count
    )


def test_phase2_result_verifies():
    fn = parse_function(TEXT)
    result = optimize_function(fn, ScheduleFeatures(time_limit=30))
    assert result.verification.ok
    assert result.phase2_applied


def test_phase2_keeps_phase1_objective_value():
    fn = parse_function(TEXT)
    result = optimize_function(fn, ScheduleFeatures(time_limit=30))
    assert result.ilp_size["objective"] == pytest.approx(
        result.output_schedule.weighted_length(result.fn)
    )
