"""Partial-ready code motion (Sec. 5.3)."""

import pytest

from repro.ir.parser import parse_function
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.workloads.samples import fig6_partial_ready_sample


@pytest.fixture(scope="module")
def fig6_with():
    fn = parse_function(fig6_partial_ready_sample())
    return optimize_function(fn, ScheduleFeatures(time_limit=60))


@pytest.fixture(scope="module")
def fig6_without():
    fn = parse_function(fig6_partial_ready_sample())
    return optimize_function(
        fn, ScheduleFeatures(time_limit=60, partial_ready=False)
    )


def test_partial_ready_improves_likely_path(fig6_with, fig6_without):
    assert fig6_with.verification.ok and fig6_without.verification.ok
    assert fig6_with.weighted_length_out < fig6_without.weighted_length_out


def test_compensation_copy_after_mov(fig6_with):
    schedule = fig6_with.output_schedule
    loads = [p for p in schedule.placements() if p.instr.is_load]
    blocks = {p.block for p in loads}
    # Two copies: one hoisted onto the likely side, one after the mov in B.
    assert len(loads) >= 2
    assert "B" in blocks
    movs = [p for p in schedule.placements() if p.instr.mnemonic == "mov"]
    assert movs
    mov_pos = (movs[0].block, movs[0].cycle)
    comp = next(p for p in loads if p.block == "B")
    assert mov_pos[0] == "B"
    assert comp.cycle > movs[0].cycle or (
        comp.cycle == movs[0].cycle
    )  # ordered within B


def test_duplicate_on_one_path_only(fig6_with):
    schedule = fig6_with.output_schedule
    loads = [p for p in schedule.placements() if p.instr.is_load]
    # No block holds two copies (single-copy-per-block invariant).
    blocks = [p.block for p in loads]
    assert len(blocks) == len(set(blocks))


def test_without_partial_ready_single_copy(fig6_without):
    loads = [
        p for p in fig6_without.output_schedule.placements() if p.instr.is_load
    ]
    assert len(loads) == 1


def test_phase2_trims_useless_compensation():
    fn = parse_function(fig6_partial_ready_sample())
    res = optimize_function(fn, ScheduleFeatures(time_limit=60, two_phase=True))
    # Instruction count must not exceed the no-phase2 variant.
    res_raw = optimize_function(
        fn, ScheduleFeatures(time_limit=60, two_phase=False)
    )
    assert (
        res.output_schedule.instruction_count
        <= res_raw.output_schedule.instruction_count
    )
