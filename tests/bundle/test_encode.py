"""Bundle encoding into 128-bit images."""

import pytest

from repro.bundle import pack_groups
from repro.bundle.encode import (
    TEMPLATE_CODES,
    code_bytes,
    decode_template,
    encode_bundle,
    encode_bundles,
    encode_slot,
)
from repro.errors import BundlingError
from repro.ir.parser import parse_instruction


def _bundle(*texts, pairs=()):
    group = [parse_instruction(t) for t in texts]
    return pack_groups([group], [list(pairs)])


def test_bundle_is_16_bytes():
    bundles = _bundle("add r1 = r2, r3", "ld8 r4 = [r5]")
    image = encode_bundle(bundles[0])
    assert len(image) == 16


def test_template_code_roundtrip():
    bundles = _bundle("add r1 = r2, r3", "br.ret b0")
    image = encode_bundle(bundles[0])
    code, name = decode_template(image)
    assert name == bundles[0].template
    assert TEMPLATE_CODES[(name, False, True)] == code


def test_encoding_is_deterministic():
    a = encode_bundle(_bundle("add r1 = r2, r3")[0])
    b = encode_bundle(_bundle("add r1 = r2, r3")[0])
    assert a == b


def test_different_operands_differ():
    a = encode_bundle(_bundle("add r1 = r2, r3")[0])
    b = encode_bundle(_bundle("add r1 = r2, r4")[0])
    assert a != b


def test_nop_slots_encode():
    bundles = _bundle("add r1 = r2, r3")
    assert bundles[0].nop_count == 2
    assert len(encode_bundle(bundles[0])) == 16


def test_predicated_instruction_encodes_guard():
    a = encode_slot(parse_instruction("(p6) add r1 = r2, r3"))
    b = encode_slot(parse_instruction("add r1 = r2, r3"))
    assert a != b


def test_code_bytes_counts_all_blocks(diamond_fn):
    from repro.bundle import bundle_schedule
    from repro.ir.cfg import CfgInfo
    from repro.ir.ddg import build_dependence_graph
    from repro.ir.liveness import compute_liveness
    from repro.sched.list_scheduler import ListScheduler

    cfg = CfgInfo(diamond_fn)
    ddg = build_dependence_graph(diamond_fn, cfg, compute_liveness(diamond_fn))
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    result = bundle_schedule(schedule)
    assert code_bytes(result) == 16 * result.total_bundles


def test_all_architectural_codes_unique():
    codes = list(TEMPLATE_CODES.values())
    assert len(codes) == len(set(codes))
    assert all(0 <= c < 32 for c in codes)
