"""DP bundler: templates, stops, permutation within order constraints."""

import pytest

from repro.bundle import bundle_schedule, group_is_bundleable, pack_groups
from repro.bundle.bundler import Bundle, pack_groups
from repro.errors import BundlingError
from repro.ir.parser import parse_instruction


def _instrs(*texts):
    return [parse_instruction(t) for t in texts]


def test_simple_group_one_bundle():
    group = _instrs("add r1 = r2, r3", "ld8 r4 = [r5]", "shl r6 = r7, 2")
    bundles = pack_groups([group], [[]])
    assert len(bundles) == 1
    assert bundles[0].stop_after == 2


def test_six_wide_group_two_bundles():
    group = _instrs(
        "ld8 r1 = [r10]",
        "ld8 r2 = [r11]",
        "add r3 = r1, r2",
        "add r4 = r3, r1",
        "shl r5 = r4, 1",
        "add r6 = r5, r4",
    )
    bundles = pack_groups([group], [[]])
    assert len(bundles) == 2


def test_nops_fill_empty_slots():
    group = _instrs("add r1 = r2, r3")
    bundles = pack_groups([group], [[]])
    assert bundles[0].nop_count == 2


def test_branch_lands_in_b_slot():
    group = _instrs("add r1 = r2, r3", "br.ret b0")
    bundles = pack_groups([group], [[]])
    bundle = bundles[0]
    branch_slots = [
        i
        for i, s in enumerate(bundle.slots)
        if not isinstance(s, str) and s.is_branch
    ]
    assert branch_slots
    assert bundle.template[branch_slots[0]] == "B"


def test_movl_uses_mlx():
    group = _instrs("movl r9 = 1234567", "ld8 r5 = [r6]")
    bundles = pack_groups([group], [[]])
    assert any(b.template == "MLX" for b in bundles)


def test_order_constraint_respected():
    # st after ld in the same cycle (memory ordering): slot order must hold.
    load = parse_instruction("ld8 r5 = [r6]")
    store = parse_instruction("st8 [r6] = r7")
    group = [load, store]
    bundles = pack_groups([group], [[(0, 1)]])
    flat = [s for b in bundles for s in b.slots if not isinstance(s, str)]
    assert flat.index(load) < flat.index(store)


def test_free_permutation_enables_packing():
    # (A, I, A, M, A, M) fails in given order within 2 bundles but packs
    # with reordering when no order pairs constrain it.
    group = _instrs(
        "shladd r1 = r2, r3",
        "zxt4 r4 = r5",
        "add r6 = r7, r8",
        "ld8 r9 = [r10]",
        "xor r11 = r12, r13",
        "ld8 r14 = [r15]",
    )
    bundles = pack_groups([group], [[]])
    assert len(bundles) == 2


def test_fully_ordered_group_can_fail():
    group = _instrs(
        "add r1 = r2, r3",
        "ld8 r4 = [r5]",
        "ld8 r6 = [r7]",
        "ld8 r8 = [r9]",
        "ld8 r10 = [r11]",
    )
    chain = [(0, 1), (1, 2), (2, 3), (3, 4)]
    with pytest.raises(BundlingError):
        pack_groups([group], [chain])
    assert not group_is_bundleable(group, chain)
    assert group_is_bundleable(group, [])


def test_mid_stop_shares_bundle_across_groups():
    # Two single-instruction cycles: with M;MI / MI;I sharing, two groups
    # can fit one bundle instead of two.
    g1 = _instrs("ld8 r1 = [r2]")
    g2 = _instrs("add r3 = r4, r5")
    bundles = pack_groups([g1, g2], [[], []])
    assert len(bundles) == 1
    assert bundles[0].mid_stop is not None or bundles[0].stop_after is not None


def test_empty_cycles_cost_nothing():
    g1 = _instrs("ld8 r1 = [r2]")
    bundles = pack_groups([g1, [], []], [[], None, None])
    assert len(bundles) == 1


def test_bundle_schedule_counts(diamond_fn):
    from repro.ir.cfg import CfgInfo
    from repro.ir.ddg import build_dependence_graph
    from repro.ir.liveness import compute_liveness
    from repro.sched.list_scheduler import ListScheduler

    cfg = CfgInfo(diamond_fn)
    ddg = build_dependence_graph(diamond_fn, cfg, compute_liveness(diamond_fn))
    schedule = ListScheduler().schedule(diamond_fn, ddg)
    result = bundle_schedule(schedule)
    assert result.total_bundles >= 3
    assert result.total_nops >= 0
    assert set(result.bundles) == {"A", "B", "C"}
