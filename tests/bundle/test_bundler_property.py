"""Property tests: every dispersal-feasible group is encodable."""

from hypothesis import given, settings, strategies as st

from repro.bundle import pack_groups
from repro.ir.parser import parse_instruction
from repro.machine.itanium2 import ITANIUM2
from repro.machine.templates import slot_accepts
from repro.machine.units import UnitKind

_SAMPLES = {
    UnitKind.A: "add r1 = r2, r3",
    UnitKind.M: "ld8 r4 = [r5]",
    UnitKind.I: "shl r6 = r7, 2",
    UnitKind.F: "fma f1 = f2, f3",
    UnitKind.B: "br.ret b0",
    UnitKind.L: "movl r9 = 123456",
}


@st.composite
def feasible_group(draw):
    kinds = draw(
        st.lists(
            st.sampled_from(list(_SAMPLES)),
            min_size=1,
            max_size=6,
        )
    )
    counts = {}
    for kind in kinds:
        counts[kind] = counts.get(kind, 0) + 1
    if not ITANIUM2.ports.feasible(counts):
        # Trim to feasibility instead of rejecting the draw.
        while kinds and not ITANIUM2.ports.feasible(counts):
            removed = kinds.pop()
            counts[removed] -= 1
    return [parse_instruction(_SAMPLES[k]) for k in kinds]


@given(feasible_group())
@settings(max_examples=80, deadline=None)
def test_unordered_feasible_groups_pack_or_raise(group):
    """Dispersal feasibility does not imply encodability (the paper's
    reason for bundling constraints, Sec. 4.2): e.g. two F-unit ops plus
    a movl need three bundles. Packing must either succeed within the
    two-bundle dispersal window with valid slots, or raise the
    BundlingError the scheduler turns into a lazy cut."""
    if not group:
        return
    from repro.errors import BundlingError

    try:
        bundles = pack_groups([group], [[]])
    except BundlingError as exc:
        assert getattr(exc, "instructions", None)
        return
    assert 1 <= len(bundles) <= 2
    # Every placed instruction sits in a compatible slot.
    placed = []
    for bundle in bundles:
        for slot_index, entry in enumerate(bundle.slots):
            if not isinstance(entry, str):
                slot_type = bundle.template[slot_index]
                assert slot_accepts(slot_type, entry.unit), (
                    f"{entry.mnemonic} in {slot_type} slot of {bundle.template}"
                )
                placed.append(entry)
    assert sorted(i.uid for i in placed) == sorted(i.uid for i in group)
    # The final bundle carries the group-ending stop.
    assert bundles[-1].stop_after is not None


@given(feasible_group(), feasible_group())
@settings(max_examples=40, deadline=None)
def test_two_groups_never_share_a_cycle_boundary_violation(g1, g2):
    if not g1 or not g2:
        return
    from repro.errors import BundlingError

    try:
        bundles = pack_groups([g1, g2], [[], []])
    except BundlingError:
        return
    # A stop must separate the groups: walking the slots, all of g1's
    # instructions appear before any of g2's.
    order = []
    for bundle in bundles:
        for entry in bundle.slots:
            if not isinstance(entry, str):
                order.append(entry.uid)
    uids1 = {i.uid for i in g1}
    first_g2 = next((k for k, uid in enumerate(order) if uid not in uids1), None)
    if first_g2 is not None:
        assert all(uid not in uids1 for uid in order[first_g2:])
