"""Machine description facade."""

from repro.machine.itanium2 import ITANIUM2, MachineDescription
from repro.machine.units import UnitKind


def test_issue_width():
    assert ITANIUM2.issue_width == 6
    assert ITANIUM2.ports.bundles_per_cycle == 2


def test_unit_of_and_latency_of():
    assert ITANIUM2.unit_of("ld8") is UnitKind.M
    assert ITANIUM2.latency_of("fma") == 4


def test_group_feasible_from_mnemonic_units():
    units = [ITANIUM2.unit_of(m) for m in ("add", "ld8", "ld8", "shl", "br")]
    assert ITANIUM2.group_feasible(units)
    units = [ITANIUM2.unit_of("ld8")] * 5
    assert not ITANIUM2.group_feasible(units)


def test_with_ports_builds_variant():
    wide = ITANIUM2.with_ports(m_ports=6, i_ports=4, issue_width=8)
    assert wide.ports.m_ports == 6
    assert wide.issue_width == 8
    # original untouched (immutability)
    assert ITANIUM2.ports.m_ports == 4


def test_unit_capacity():
    assert ITANIUM2.unit_capacity(UnitKind.M) == 4
    assert ITANIUM2.unit_capacity(UnitKind.A) == 6
    assert ITANIUM2.unit_capacity(UnitKind.B) == 3


def test_default_is_singleton_like():
    assert isinstance(ITANIUM2, MachineDescription)
    assert ITANIUM2.name == "itanium2"
