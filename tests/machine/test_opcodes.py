"""Opcode table and completer folding."""

import pytest

from repro.errors import MachineError
from repro.machine.opcodes import lookup_opcode
from repro.machine.units import UnitKind


def test_basic_alu():
    info = lookup_opcode("add")
    assert info.unit is UnitKind.A
    assert info.latency == 1
    assert not info.is_load


def test_completers_fold_to_family():
    assert lookup_opcode("cmp.eq.unc").name == "cmp"
    assert lookup_opcode("br.cond.dptk.few").name == "br.cond"
    assert lookup_opcode("ld8.acq").name == "ld8"
    assert lookup_opcode("shr.u").name == "shr.u"


def test_speculative_loads_are_distinct():
    plain = lookup_opcode("ld8")
    spec = lookup_opcode("ld8.s")
    adv = lookup_opcode("ld8.a")
    assert plain.may_trap and not spec.may_trap and not adv.may_trap
    assert spec.is_spec_load and adv.is_adv_load
    assert plain.latency == spec.latency == adv.latency


def test_checks():
    chk = lookup_opcode("chk.s")
    assert chk.is_check and chk.unit is UnitKind.M
    assert lookup_opcode("chk.a").is_check


def test_branch_family_flags():
    assert lookup_opcode("br.call").is_call
    assert lookup_opcode("br.ret").is_return
    assert lookup_opcode("br.cond").is_branch
    assert not lookup_opcode("br").multiply_executable


def test_compare_writes_predicates():
    assert lookup_opcode("cmp").is_compare
    assert lookup_opcode("tbit").is_compare
    assert lookup_opcode("fcmp").is_compare


def test_store_has_zero_latency():
    info = lookup_opcode("st8")
    assert info.is_store and info.latency == 0


def test_fp_latency():
    assert lookup_opcode("fma").latency == 4
    assert lookup_opcode("ldf").latency > lookup_opcode("ld8").latency


def test_unknown_opcode_raises():
    with pytest.raises(MachineError):
        lookup_opcode("frobnicate")


def test_nops():
    for mnemonic in ("nop.m", "nop.i", "nop.f", "nop.b"):
        assert lookup_opcode(mnemonic).is_nop
