"""Bundle templates and slot compatibility."""

import pytest

from repro.machine.templates import (
    TEMPLATES,
    TEMPLATES_BY_NAME,
    nop_for_slot,
    slot_accepts,
)
from repro.machine.units import UnitKind


def test_all_architectural_templates_present():
    names = {t.name for t in TEMPLATES}
    assert names == {
        "MII",
        "MLX",
        "MMI",
        "MFI",
        "MMF",
        "MIB",
        "MBB",
        "BBB",
        "MMB",
        "MFB",
    }


def test_mid_stop_templates():
    assert TEMPLATES_BY_NAME["MMI"].has_mid_stop  # M;MI
    assert TEMPLATES_BY_NAME["MII"].has_mid_stop  # MI;I
    assert not TEMPLATES_BY_NAME["MFB"].has_mid_stop
    assert 0 in TEMPLATES_BY_NAME["MMI"].stop_options
    assert 1 in TEMPLATES_BY_NAME["MII"].stop_options


def test_slot_acceptance():
    assert slot_accepts("M", UnitKind.M)
    assert slot_accepts("M", UnitKind.A)
    assert slot_accepts("I", UnitKind.A)
    assert not slot_accepts("I", UnitKind.M)
    assert not slot_accepts("M", UnitKind.F)
    assert slot_accepts("B", UnitKind.B)
    assert slot_accepts("L", UnitKind.L)
    assert not slot_accepts("X", UnitKind.I)


def test_unknown_slot_type_raises():
    with pytest.raises(ValueError):
        slot_accepts("Q", UnitKind.M)


def test_nop_fillers():
    assert nop_for_slot("M") == "nop.m"
    assert nop_for_slot("B") == "nop.b"
    assert nop_for_slot("X") == "nop.i"


def test_every_template_has_end_stop_option():
    for template in TEMPLATES:
        assert 2 in template.stop_options
        assert None in template.stop_options
