"""Dispersal feasibility of the Itanium 2 port model."""

import pytest

from repro.machine.units import Itanium2Ports, UnitKind

M, I, F, B, A, L = (
    UnitKind.M,
    UnitKind.I,
    UnitKind.F,
    UnitKind.B,
    UnitKind.A,
    UnitKind.L,
)


@pytest.fixture
def ports():
    return Itanium2Ports()


def _feasible(ports, *kinds):
    counts = {}
    for kind in kinds:
        counts[kind] = counts.get(kind, 0) + 1
    return ports.feasible(counts)


def test_six_alu_ops_fit(ports):
    assert _feasible(ports, A, A, A, A, A, A)


def test_seven_instructions_exceed_width(ports):
    assert not _feasible(ports, A, A, A, A, A, A, A)


def test_memory_port_limit(ports):
    assert _feasible(ports, M, M, M, M)
    assert not _feasible(ports, M, M, M, M, M)


def test_integer_port_limit(ports):
    assert _feasible(ports, I, I)
    assert not _feasible(ports, I, I, I)


def test_alu_overflow_uses_spare_ports(ports):
    # 4 M + 2 A: the As must go to the two I ports.
    assert _feasible(ports, M, M, M, M, A, A)
    # 4 M + 2 I + 1 A: no port left (also exceeds width).
    assert not _feasible(ports, M, M, M, M, I, I, A)


def test_fp_and_branch_limits(ports):
    assert _feasible(ports, F, F, B, B, B)
    assert not _feasible(ports, F, F, F)
    assert not _feasible(ports, B, B, B, B)


def test_long_immediate_counts_double(ports):
    # movl takes two slots and one I port.
    assert _feasible(ports, L, M, M, A, A)
    assert not _feasible(ports, L, L, L)  # 6 slots but 3 > 2 I ports
    assert not _feasible(ports, L, I, I)  # I ports exhausted


def test_mixed_full_width_group(ports):
    assert _feasible(ports, M, M, I, A, F, B)
