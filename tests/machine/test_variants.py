"""Micro-architecture variants (the Sec. 7 research-tool use case)."""

import pytest

from repro.ir.parser import parse_function
from repro.machine.itanium2 import ITANIUM2
from repro.sched.scheduler import ScheduleFeatures, optimize_function

WIDE_BLOCK = """
.proc widetest
.livein r32, r33
.liveout r8
.block A freq=100
  ld8 r10 = [r32] cls=heap
  ld8 r11 = [r32+8] cls=heap
  ld8 r12 = [r32+16] cls=heap
  add r13 = r33, 1
  add r14 = r33, 2
  add r15 = r33, 3
  add r8 = r13, r14
  br.ret b0
.endp
"""


def test_narrow_machine_needs_more_cycles():
    fn = parse_function(WIDE_BLOCK)
    features = ScheduleFeatures(time_limit=30, verify=False, two_phase=False)
    wide = optimize_function(fn, features, machine=ITANIUM2)
    narrow = optimize_function(
        fn,
        features,
        machine=ITANIUM2.with_ports(issue_width=3, m_ports=2, i_ports=1),
    )
    assert (
        narrow.output_schedule.block_length("A")
        >= wide.output_schedule.block_length("A")
    )


def test_wider_machine_never_worse():
    fn = parse_function(WIDE_BLOCK)
    features = ScheduleFeatures(time_limit=30, verify=False, two_phase=False)
    base = optimize_function(fn, features, machine=ITANIUM2)
    wider = optimize_function(
        fn, features, machine=ITANIUM2.with_ports(issue_width=8, m_ports=5)
    )
    assert wider.weighted_length_out <= base.weighted_length_out


def test_verification_respects_variant_machine():
    fn = parse_function(WIDE_BLOCK)
    narrow = ITANIUM2.with_ports(issue_width=2, m_ports=1, i_ports=1)
    result = optimize_function(
        fn,
        ScheduleFeatures(time_limit=30, two_phase=False),
        machine=narrow,
    )
    assert result.verification.ok
    for cycle, group in result.output_schedule.cycles_of("A").items():
        assert narrow.group_feasible([i.unit for i in group])
